//! Attribute query model (§4).
//!
//! Scientists query the catalog for *objects* whose metadata attributes
//! satisfy value predicates — never for paths. This module is the Rust
//! equivalent of the paper's Java `MyFile`/`MyAttr` API:
//!
//! ```
//! use catalog::query::{AttrQuery, ElemCond, ObjectQuery};
//!
//! // "grid" (ARPS) with dx = 1000, having a "grid-stretching" (ARPS)
//! // sub-attribute with dzmin = 100  — the paper's §4 example.
//! let q = ObjectQuery::new().attr(
//!     AttrQuery::new("grid").source("ARPS")
//!         .elem(ElemCond::eq_num("dx", 1000.0))
//!         .sub(AttrQuery::new("grid-stretching").source("ARPS")
//!             .elem(ElemCond::eq_num("dzmin", 100.0))),
//! );
//! assert_eq!(q.attrs.len(), 1);
//! ```

/// Comparison operator in an element condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QOp {
    /// Equal (`MYEQUAL` in myLEAD's Java API).
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
    /// SQL LIKE pattern over the string value.
    Like,
    /// Inclusive numeric range (uses `value` .. `value2`).
    Between,
    /// The element exists with any value.
    Exists,
}

/// Condition value.
#[derive(Debug, Clone, PartialEq)]
pub enum QValue {
    /// Compared against the numeric column.
    Num(f64),
    /// Compared against the string column.
    Str(String),
}

/// One element criterion inside an attribute query.
#[derive(Debug, Clone, PartialEq)]
pub struct ElemCond {
    /// Element name.
    pub name: String,
    /// Operator.
    pub op: QOp,
    /// Primary comparison value (ignored for `Exists`).
    pub value: QValue,
    /// Upper bound for `Between`.
    pub value2: Option<QValue>,
}

impl ElemCond {
    /// `name = number`.
    pub fn eq_num(name: impl Into<String>, v: f64) -> ElemCond {
        ElemCond { name: name.into(), op: QOp::Eq, value: QValue::Num(v), value2: None }
    }

    /// `name = string`.
    pub fn eq_str(name: impl Into<String>, v: impl Into<String>) -> ElemCond {
        ElemCond { name: name.into(), op: QOp::Eq, value: QValue::Str(v.into()), value2: None }
    }

    /// `name op number`.
    pub fn num(name: impl Into<String>, op: QOp, v: f64) -> ElemCond {
        ElemCond { name: name.into(), op, value: QValue::Num(v), value2: None }
    }

    /// `name op string`.
    pub fn str(name: impl Into<String>, op: QOp, v: impl Into<String>) -> ElemCond {
        ElemCond { name: name.into(), op, value: QValue::Str(v.into()), value2: None }
    }

    /// `name LIKE pattern`.
    pub fn like(name: impl Into<String>, pattern: impl Into<String>) -> ElemCond {
        ElemCond {
            name: name.into(),
            op: QOp::Like,
            value: QValue::Str(pattern.into()),
            value2: None,
        }
    }

    /// `lo <= name <= hi`.
    pub fn between(name: impl Into<String>, lo: f64, hi: f64) -> ElemCond {
        ElemCond {
            name: name.into(),
            op: QOp::Between,
            value: QValue::Num(lo),
            value2: Some(QValue::Num(hi)),
        }
    }

    /// `name` exists.
    pub fn exists(name: impl Into<String>) -> ElemCond {
        ElemCond { name: name.into(), op: QOp::Exists, value: QValue::Num(0.0), value2: None }
    }
}

/// A metadata-attribute criterion: which attribute, which element
/// conditions, and which nested sub-attribute criteria.
#[derive(Debug, Clone, PartialEq)]
pub struct AttrQuery {
    /// Attribute name.
    pub name: String,
    /// Attribute source (`None` for structural attributes).
    pub source: Option<String>,
    /// Element conditions (conjunctive).
    pub elems: Vec<ElemCond>,
    /// Sub-attribute criteria (conjunctive).
    pub subs: Vec<AttrQuery>,
    /// Require sub-attributes to be *direct* children of this attribute
    /// instance rather than any descendant (default false: the paper's
    /// inverted list matches at any depth).
    pub direct_subs: bool,
}

impl AttrQuery {
    /// Criterion on the named attribute.
    pub fn new(name: impl Into<String>) -> AttrQuery {
        AttrQuery {
            name: name.into(),
            source: None,
            elems: Vec::new(),
            subs: Vec::new(),
            direct_subs: false,
        }
    }

    /// Set the defining source (dynamic attributes).
    pub fn source(mut self, source: impl Into<String>) -> AttrQuery {
        self.source = Some(source.into());
        self
    }

    /// Add an element condition.
    pub fn elem(mut self, cond: ElemCond) -> AttrQuery {
        self.elems.push(cond);
        self
    }

    /// Add a sub-attribute criterion.
    #[allow(clippy::should_implement_trait)]
    pub fn sub(mut self, sub: AttrQuery) -> AttrQuery {
        self.subs.push(sub);
        self
    }

    /// Require direct parent-child instance linkage for `subs`.
    pub fn direct(mut self) -> AttrQuery {
        self.direct_subs = true;
        self
    }

    /// Total number of element conditions in this subtree.
    pub fn subtree_elem_count(&self) -> usize {
        self.elems.len() + self.subs.iter().map(|s| s.subtree_elem_count()).sum::<usize>()
    }

    /// Total number of attribute criteria in this subtree (self incl.).
    pub fn subtree_attr_count(&self) -> usize {
        1 + self.subs.iter().map(|s| s.subtree_attr_count()).sum::<usize>()
    }
}

/// A whole object query: conjunctive top-level attribute criteria.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ObjectQuery {
    /// Top-level attribute criteria (all must match).
    pub attrs: Vec<AttrQuery>,
}

impl ObjectQuery {
    /// Empty query (matches nothing until criteria are added).
    pub fn new() -> ObjectQuery {
        ObjectQuery::default()
    }

    /// Add a top-level attribute criterion.
    pub fn attr(mut self, a: AttrQuery) -> ObjectQuery {
        self.attrs.push(a);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_mirrors_paper_example() {
        let q = ObjectQuery::new().attr(
            AttrQuery::new("grid").source("ARPS").elem(ElemCond::eq_num("dx", 1000.0)).sub(
                AttrQuery::new("grid-stretching")
                    .source("ARPS")
                    .elem(ElemCond::eq_num("dzmin", 100.0)),
            ),
        );
        assert_eq!(q.attrs.len(), 1);
        let grid = &q.attrs[0];
        assert_eq!(grid.source.as_deref(), Some("ARPS"));
        assert_eq!(grid.elems.len(), 1);
        assert_eq!(grid.subs.len(), 1);
        assert_eq!(grid.subtree_elem_count(), 2);
        assert_eq!(grid.subtree_attr_count(), 2);
    }

    #[test]
    fn cond_constructors() {
        assert_eq!(ElemCond::eq_num("x", 1.0).op, QOp::Eq);
        assert_eq!(ElemCond::like("x", "a%").op, QOp::Like);
        let b = ElemCond::between("x", 1.0, 2.0);
        assert_eq!(b.op, QOp::Between);
        assert_eq!(b.value2, Some(QValue::Num(2.0)));
        assert_eq!(ElemCond::exists("x").op, QOp::Exists);
        assert_eq!(ElemCond::str("x", QOp::Ne, "v").value, QValue::Str("v".into()));
    }

    #[test]
    fn counts_nested() {
        let q = AttrQuery::new("a")
            .elem(ElemCond::exists("e1"))
            .sub(AttrQuery::new("b").elem(ElemCond::exists("e2")).sub(AttrQuery::new("c")));
        assert_eq!(q.subtree_elem_count(), 2);
        assert_eq!(q.subtree_attr_count(), 3);
    }
}
