//! Global schema-level ordering (§2, §5).
//!
//! The paper's key observation: because every repeating or recursive
//! element lives *inside* a metadata attribute, only the nodes at or
//! above attribute roots need ordering, and that ordering can be
//! computed **once per schema** instead of per document (contrast
//! Tatarinov et al., where global/local/Dewey orders must be maintained
//! per document on every update — our E7 ablation measures that cost).
//!
//! For each ordered node we keep its pre-order number, tag, the order
//! of the last ordered node in its subtree (so closing tags can be
//! emitted with set operations — no external tagger), and its depth.
//! A node → ancestors inverted list supports the response builder's
//! "which wrapper tags does this object need" join.

use crate::partition::{NodeRole, Partition};
use std::collections::HashMap;
use xmlkit::schema::{ChildRef, SchemaNodeId};

/// Order number of a node in the global schema ordering (1-based).
pub type OrderId = u32;

/// One entry of the global ordering table.
#[derive(Debug, Clone)]
pub struct OrderedNode {
    /// Pre-order position, starting at 1 for the document root.
    pub order: OrderId,
    /// Schema node this entry describes.
    pub node: SchemaNodeId,
    /// Element tag.
    pub tag: String,
    /// Largest order in this node's subtree (== `order` for attribute
    /// roots, which close before the next ordered node opens).
    pub last: OrderId,
    /// Depth below the document root (root = 0).
    pub depth: u32,
    /// True when this entry is an attribute root (a CLOB anchor) rather
    /// than a wrapper.
    pub is_attr_root: bool,
}

/// The global ordering: ordered nodes plus ancestor inverted list.
#[derive(Debug, Clone)]
pub struct GlobalOrdering {
    nodes: Vec<OrderedNode>,
    by_schema_node: HashMap<SchemaNodeId, OrderId>,
    /// `ancestors[i]` = orders of the strict ancestors of node with
    /// order `i + 1`, from root downward.
    ancestors: Vec<Vec<OrderId>>,
}

impl GlobalOrdering {
    /// Compute the ordering for a partitioned schema.
    pub fn new(partition: &Partition) -> GlobalOrdering {
        let schema = partition.schema();
        let mut nodes: Vec<OrderedNode> = Vec::new();
        let mut by_schema_node = HashMap::new();
        let mut ancestors: Vec<Vec<OrderId>> = Vec::new();

        // Pre-order DFS over wrappers and attribute roots only.
        // Recursion depth equals upper-schema depth, which is small.
        fn visit(
            partition: &Partition,
            id: SchemaNodeId,
            depth: u32,
            anc: &mut Vec<OrderId>,
            nodes: &mut Vec<OrderedNode>,
            by: &mut HashMap<SchemaNodeId, OrderId>,
            ancestors: &mut Vec<Vec<OrderId>>,
        ) -> OrderId {
            let schema = partition.schema();
            let order = (nodes.len() + 1) as OrderId;
            let role = partition.role(id);
            let is_attr_root = matches!(role, NodeRole::AttributeRoot { .. });
            nodes.push(OrderedNode {
                order,
                node: id,
                tag: schema.node(id).name.clone(),
                last: order, // patched below
                depth,
                is_attr_root,
            });
            by.insert(id, order);
            ancestors.push(anc.clone());
            let mut last = order;
            if !is_attr_root {
                anc.push(order);
                for c in schema.node(id).children.iter() {
                    if let ChildRef::Node(n) = c {
                        let child_last = visit(partition, *n, depth + 1, anc, nodes, by, ancestors);
                        last = last.max(child_last);
                    }
                }
                anc.pop();
            }
            nodes[(order - 1) as usize].last = last;
            last
        }

        let mut anc = Vec::new();
        visit(
            partition,
            schema.root(),
            0,
            &mut anc,
            &mut nodes,
            &mut by_schema_node,
            &mut ancestors,
        );
        GlobalOrdering { nodes, by_schema_node, ancestors }
    }

    /// All ordered nodes, by ascending order.
    pub fn nodes(&self) -> &[OrderedNode] {
        &self.nodes
    }

    /// Number of ordered nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when empty (never after construction).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Entry for a given order id.
    pub fn node(&self, order: OrderId) -> &OrderedNode {
        &self.nodes[(order - 1) as usize]
    }

    /// Order of a schema node (wrappers and attribute roots only).
    pub fn order_of(&self, id: SchemaNodeId) -> Option<OrderId> {
        self.by_schema_node.get(&id).copied()
    }

    /// Strict-ancestor orders of `order`, root first.
    pub fn ancestors_of(&self, order: OrderId) -> &[OrderId] {
        &self.ancestors[(order - 1) as usize]
    }

    /// `(node order, ancestor order)` pairs for the whole schema — the
    /// inverted list the catalog materializes as a table.
    pub fn ancestor_pairs(&self) -> Vec<(OrderId, OrderId)> {
        let mut out = Vec::new();
        for n in &self.nodes {
            for &a in self.ancestors_of(n.order) {
                out.push((n.order, a));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::PartitionSpec;
    use std::sync::Arc;
    use xmlkit::schema::Schema;

    fn ordering() -> (Arc<Schema>, Partition, GlobalOrdering) {
        let s = Arc::new(
            Schema::parse_dsl(
                "root {
                    id
                    meta {
                        status { progress update }
                        theme* { kt key+ }
                    }
                    geo {
                        detailed* {
                            enttyp { enttypl enttypds }
                            attr* { attrlabl attrdefs attrv? ^attr }
                        }
                    }
                 }",
            )
            .unwrap(),
        );
        let spec = PartitionSpec::default()
            .attr("/root/id")
            .attr("/root/meta/status")
            .attr("/root/meta/theme")
            .dynamic_attr("/root/geo/detailed");
        let p = Partition::new(s.clone(), &spec).unwrap();
        let o = GlobalOrdering::new(&p);
        (s, p, o)
    }

    #[test]
    fn preorder_numbers() {
        let (s, _, o) = ordering();
        // root=1 id=2 meta=3 status=4 theme=5 geo=6 detailed=7
        assert_eq!(o.len(), 7);
        assert_eq!(o.order_of(s.root()), Some(1));
        assert_eq!(o.order_of(s.resolve_path("/root/id").unwrap()), Some(2));
        assert_eq!(o.order_of(s.resolve_path("/root/meta").unwrap()), Some(3));
        assert_eq!(o.order_of(s.resolve_path("/root/meta/status").unwrap()), Some(4));
        assert_eq!(o.order_of(s.resolve_path("/root/meta/theme").unwrap()), Some(5));
        assert_eq!(o.order_of(s.resolve_path("/root/geo").unwrap()), Some(6));
        assert_eq!(o.order_of(s.resolve_path("/root/geo/detailed").unwrap()), Some(7));
        // nodes inside attributes are unordered
        assert_eq!(o.order_of(s.resolve_path("/root/meta/theme/kt").unwrap()), None);
    }

    #[test]
    fn last_child_orders() {
        let (_, _, o) = ordering();
        assert_eq!(o.node(1).last, 7); // root spans everything
        assert_eq!(o.node(3).last, 5); // meta spans status..theme
        assert_eq!(o.node(4).last, 4); // attribute roots close immediately
        assert_eq!(o.node(6).last, 7); // geo spans detailed
    }

    #[test]
    fn depths_and_flags() {
        let (_, _, o) = ordering();
        assert_eq!(o.node(1).depth, 0);
        assert_eq!(o.node(4).depth, 2);
        assert!(o.node(4).is_attr_root);
        assert!(!o.node(3).is_attr_root);
    }

    #[test]
    fn ancestor_inverted_list() {
        let (_, _, o) = ordering();
        assert_eq!(o.ancestors_of(4), &[1, 3]); // status under root, meta
        assert_eq!(o.ancestors_of(1), &[] as &[OrderId]);
        let pairs = o.ancestor_pairs();
        // id(2):1  meta(3):1  status(4):2  theme(5):2  geo(6):1  detailed(7):2
        assert_eq!(pairs.len(), 1 + 1 + 2 + 2 + 1 + 2);
        assert!(pairs.contains(&(7, 6)));
        assert!(pairs.contains(&(7, 1)));
    }

    #[test]
    fn tags_match_schema() {
        let (_, _, o) = ordering();
        assert_eq!(o.node(5).tag, "theme");
        assert_eq!(o.node(7).tag, "detailed");
    }
}
