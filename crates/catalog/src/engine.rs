//! Query execution over the shredded store (§4, Fig 4).
//!
//! A query is first *shredded* like a document: each `AttrQuery` node
//! resolves to an attribute definition, each `ElemCond` to an element
//! definition, and the query tree's required counts are computed. The
//! match then runs as set-based relational plans over the `elems`,
//! `attrs` and `attr_anc` tables — the instance-level inverted list is
//! what keeps nested dynamic-attribute criteria join-depth-constant
//! instead of one self-join per nesting level (contrast the edge-table
//! baseline).
//!
//! Two strategies are provided:
//!
//! - [`MatchStrategy::Exact`] — hierarchical semi-joins bottom-up over
//!   the query tree; equivalent to the XQuery FLWOR the paper shows.
//! - [`MatchStrategy::Counted`] — Fig 4's flat formulation: every query
//!   node links *directly to the top attribute instance* through the
//!   inverted list and satisfaction is decided by counts. One join
//!   level cheaper; diverges from XQuery semantics only when a query
//!   nests sub-attributes two+ levels deep **and** partial matches are
//!   split across sibling instances (see `counted_vs_exact` test).

use crate::defs::{AttrId, DefsRegistry, ElemId};
use crate::error::{CatalogError, Result};
use crate::query::{AttrQuery, ElemCond, ObjectQuery, QOp, QValue};
use minidb::{CmpOp, Database, Expr, Plan, Value};

/// Matching strategy (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MatchStrategy {
    /// Hierarchical semi-join; XQuery-equivalent semantics.
    #[default]
    Exact,
    /// Fig-4 count-based matching through top-instance links.
    Counted,
}

/// Physical style of the generated match plans.
///
/// Both styles compute the same answer for every strategy; they differ
/// only in the operators used. [`PlanStyle::SemiJoin`] is the default
/// and what [`run_query`] executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlanStyle {
    /// Semi-join pipelines with trailing `Distinct`s folded in — the
    /// probe side is filtered by key-set membership, never widened, so
    /// the executor's set-oriented `(object_id, seq)` fast path applies
    /// end to end.
    #[default]
    SemiJoin,
    /// The original fully-materializing hash-join chains (one `Distinct
    /// ∘ Project ∘ HashJoin` stage per criterion). Kept for ablations
    /// and for agreement testing against the semi-join pipelines.
    Materialized,
}

/// A query node resolved against the definition registry.
#[derive(Debug, Clone)]
struct ResolvedNode {
    attr_id: AttrId,
    elems: Vec<(ElemId, ElemCond)>,
    children: Vec<ResolvedNode>,
    direct_subs: bool,
}

/// Resolve the query tree to definition ids.
fn resolve(defs: &DefsRegistry, q: &AttrQuery, parent: Option<AttrId>) -> Result<ResolvedNode> {
    // Sub-attribute criteria may skip intervening definition levels
    // (the inverted list links instances across any distance).
    let def = match parent {
        None => defs.find_attr(&q.name, q.source.as_deref(), None),
        Some(p) => defs.find_attr_under(&q.name, q.source.as_deref(), p),
    }
    .ok_or_else(|| {
        CatalogError::BadQuery(format!(
            "unknown attribute ({}, {})",
            q.name,
            q.source.as_deref().unwrap_or("-")
        ))
    })?;
    if !def.queryable {
        return Err(CatalogError::BadQuery(format!("attribute {} is not queryable", q.name)));
    }
    let attr_id = def.id;
    let mut elems = Vec::with_capacity(q.elems.len());
    for c in &q.elems {
        let elem_id = defs.resolve_elem(attr_id, &c.name).ok_or_else(|| {
            CatalogError::BadQuery(format!("unknown element {} on attribute {}", c.name, q.name))
        })?;
        elems.push((elem_id, c.clone()));
    }
    let mut children = Vec::with_capacity(q.subs.len());
    for s in &q.subs {
        children.push(resolve(defs, s, Some(attr_id))?);
    }
    Ok(ResolvedNode { attr_id, elems, children, direct_subs: q.direct_subs })
}

// Column order of `elems`:   object_id=0 attr_id=1 attr_seq=2 elem_id=3 elem_seq=4 value_str=5 value_num=6
// Column order of `attrs`:   object_id=0 attr_id=1 seq=2 clob_seq=3
// Column order of `attr_anc`: object_id=0 attr_id=1 seq=2 anc_attr_id=3 anc_seq=4 distance=5

/// Predicate over the `elems` table for one element condition.
fn elem_pred(elem_id: ElemId, cond: &ElemCond) -> Expr {
    let id_eq = Expr::col_eq(3, elem_id);
    let value_pred = match cond.op {
        QOp::Exists => Expr::lit(true),
        QOp::Like => {
            let QValue::Str(p) = &cond.value else {
                return Expr::lit(false);
            };
            Expr::Like(Box::new(Expr::col(5)), p.clone())
        }
        QOp::Between => {
            let (QValue::Num(lo), Some(QValue::Num(hi))) = (&cond.value, &cond.value2) else {
                return Expr::lit(false);
            };
            Expr::Between(
                Box::new(Expr::col(6)),
                Box::new(Expr::lit(*lo)),
                Box::new(Expr::lit(*hi)),
            )
        }
        QOp::Eq | QOp::Ne | QOp::Lt | QOp::Le | QOp::Gt | QOp::Ge => {
            let op = match cond.op {
                QOp::Eq => CmpOp::Eq,
                QOp::Ne => CmpOp::Ne,
                QOp::Lt => CmpOp::Lt,
                QOp::Le => CmpOp::Le,
                QOp::Gt => CmpOp::Gt,
                QOp::Ge => CmpOp::Ge,
                _ => unreachable!(),
            };
            match &cond.value {
                QValue::Num(n) => Expr::Cmp(op, Box::new(Expr::col(6)), Box::new(Expr::lit(*n))),
                QValue::Str(s) => {
                    Expr::Cmp(op, Box::new(Expr::col(5)), Box::new(Expr::lit(s.clone())))
                }
            }
        }
    };
    Expr::and(id_eq, value_pred)
}

/// `(object_id, seq)` key pair over the `elems` / `attrs` tables.
fn key_cols() -> Vec<(Expr, String)> {
    vec![(Expr::col(0), "object_id".into()), (Expr::col(2), "seq".into())]
}

/// Plan yielding distinct `(object_id, seq)` of instances of
/// `node.attr_id` that satisfy all *direct* element conditions.
fn direct_instances_plan(node: &ResolvedNode, style: PlanStyle) -> Plan {
    if node.elems.is_empty() {
        // No element conditions: every instance of the definition.
        return Plan::Distinct {
            input: Box::new(
                Plan::Scan { table: "attrs".into(), filter: Some(Expr::col_eq(1, node.attr_id)) }
                    .project(key_cols()),
            ),
        };
    }
    match style {
        PlanStyle::SemiJoin => {
            // First condition probes; every further condition becomes a
            // semi-join build side. The probe is filtered in place —
            // nothing is widened — and a single trailing Distinct
            // replaces the per-stage ones.
            let mut conds = node.elems.iter();
            let (elem_id, cond) = conds.next().expect("at least one condition");
            let mut plan =
                Plan::Scan { table: "elems".into(), filter: Some(elem_pred(*elem_id, cond)) }
                    .project(key_cols());
            for (elem_id, cond) in conds {
                let build =
                    Plan::Scan { table: "elems".into(), filter: Some(elem_pred(*elem_id, cond)) }
                        .project(key_cols());
                plan = plan.semi_join(build, vec![0, 1], vec![0, 1]);
            }
            Plan::Distinct { input: Box::new(plan) }
        }
        PlanStyle::Materialized => {
            let mut plan: Option<Plan> = None;
            for (elem_id, cond) in &node.elems {
                let cond_plan = Plan::Distinct {
                    input: Box::new(
                        Plan::Scan {
                            table: "elems".into(),
                            filter: Some(elem_pred(*elem_id, cond)),
                        }
                        .project(key_cols()),
                    ),
                };
                plan = Some(match plan {
                    None => cond_plan,
                    Some(acc) => Plan::Distinct {
                        input: Box::new(acc.hash_join(cond_plan, vec![0, 1], vec![0, 1]).project(
                            vec![(Expr::col(0), "object_id".into()), (Expr::col(1), "seq".into())],
                        )),
                    },
                });
            }
            plan.expect("at least one condition")
        }
    }
}

/// Inverted-list scan restricted to one (child, ancestor) definition
/// pair; `distance = 1` when the query demands direct children.
fn link_scan(child: AttrId, ancestor: AttrId, direct_only: bool) -> Plan {
    let mut link_pred = Expr::and(Expr::col_eq(1, child), Expr::col_eq(3, ancestor));
    if direct_only {
        link_pred = Expr::and(link_pred, Expr::col_eq(5, 1i64));
    }
    Plan::Scan { table: "attr_anc".into(), filter: Some(link_pred) }
}

/// Ancestor instances `(object_id, anc_seq)` reachable from satisfied
/// child instances through the inverted list.
fn ancestors_of(child_sat: Plan, link: Plan, style: PlanStyle) -> Plan {
    match style {
        // Filter the link scan by child-key membership *during the
        // scan*, then project the ancestor key — the executor fuses
        // this shape into one pass over `attr_anc`.
        PlanStyle::SemiJoin => {
            Plan::Distinct {
                input: Box::new(link.semi_join(child_sat, vec![0, 2], vec![0, 1]).project(vec![
                    (Expr::col(0), "object_id".into()),
                    (Expr::col(4), "seq".into()),
                ])),
            }
        }
        // child_sat (obj, seq) ⋈ link (obj=0, child seq=2) → (obj=2, anc_seq=6)
        PlanStyle::Materialized => {
            Plan::Distinct {
                input: Box::new(child_sat.hash_join(link, vec![0, 1], vec![0, 2]).project(vec![
                    (Expr::col(2), "object_id".into()),
                    (Expr::col(6), "seq".into()),
                ])),
            }
        }
    }
}

/// Intersect two `(object_id, seq)` instance sets.
fn intersect_instances(acc: Plan, other: Plan, style: PlanStyle) -> Plan {
    match style {
        PlanStyle::SemiJoin => acc.semi_join(other, vec![0, 1], vec![0, 1]),
        PlanStyle::Materialized => {
            Plan::Distinct {
                input: Box::new(acc.hash_join(other, vec![0, 1], vec![0, 1]).project(vec![
                    (Expr::col(0), "object_id".into()),
                    (Expr::col(1), "seq".into()),
                ])),
            }
        }
    }
}

/// Exact strategy: bottom-up hierarchical semi-join.
///
/// Returns a plan yielding distinct `(object_id, seq)` for instances of
/// `node.attr_id` satisfying the node's whole subtree.
fn exact_plan(node: &ResolvedNode, style: PlanStyle) -> Plan {
    let mut plan = direct_instances_plan(node, style);
    for child in &node.children {
        let child_sat = exact_plan(child, style);
        let link = link_scan(child.attr_id, node.attr_id, node.direct_subs);
        let parents = ancestors_of(child_sat, link, style);
        plan = intersect_instances(plan, parents, style);
    }
    plan
}

/// Counted strategy: every descendant query node links straight to the
/// top attribute instance (Fig 4's inverted-list shortcut).
fn counted_plan(top: &ResolvedNode, style: PlanStyle) -> Plan {
    let mut plan = direct_instances_plan(top, style);
    fn visit(top_attr: AttrId, node: &ResolvedNode, plan: Plan, style: PlanStyle) -> Plan {
        let mut plan = plan;
        for child in &node.children {
            let child_sat = direct_instances_plan(child, style);
            let link = link_scan(child.attr_id, top_attr, false);
            let tops = ancestors_of(child_sat, link, style);
            plan = intersect_instances(plan, tops, style);
            plan = visit(top_attr, child, plan, style);
        }
        plan
    }
    plan = visit(top.attr_id, top, plan, style);
    plan
}

/// Intersect two distinct `object_id` sets.
fn intersect_objects(acc: Plan, other: Plan, style: PlanStyle) -> Plan {
    match style {
        PlanStyle::SemiJoin => acc.semi_join(other, vec![0], vec![0]),
        PlanStyle::Materialized => Plan::Distinct {
            input: Box::new(
                acc.hash_join(other, vec![0], vec![0])
                    .project(vec![(Expr::col(0), "object_id".into())]),
            ),
        },
    }
}

/// Build the full match plan for an [`ObjectQuery`] without executing
/// it, in the default [`PlanStyle`]. Shared by [`run_query`] and the
/// catalog's `EXPLAIN ANALYZE` path, so the analyzed plan is exactly
/// the executed plan.
pub fn build_query_plan(
    defs: &DefsRegistry,
    query: &ObjectQuery,
    strategy: MatchStrategy,
) -> Result<Plan> {
    build_query_plan_styled(defs, query, strategy, PlanStyle::default())
}

/// [`build_query_plan`] with an explicit [`PlanStyle`] (ablations and
/// agreement tests).
pub fn build_query_plan_styled(
    defs: &DefsRegistry,
    query: &ObjectQuery,
    strategy: MatchStrategy,
    style: PlanStyle,
) -> Result<Plan> {
    if query.attrs.is_empty() {
        return Err(CatalogError::BadQuery("query has no attribute criteria".into()));
    }
    let mut obj_plan: Option<Plan> = None;
    for aq in &query.attrs {
        let node = resolve(defs, aq, None)?;
        let sat = match strategy {
            MatchStrategy::Exact => exact_plan(&node, style),
            MatchStrategy::Counted => counted_plan(&node, style),
        };
        let objs = Plan::Distinct {
            input: Box::new(sat.project(vec![(Expr::col(0), "object_id".into())])),
        };
        obj_plan = Some(match obj_plan {
            None => objs,
            Some(acc) => intersect_objects(acc, objs, style),
        });
    }
    Ok(Plan::Sort { input: Box::new(obj_plan.expect("non-empty query")), keys: vec![(0, false)] })
}

/// Extract the leading `object_id` column of a match result.
pub(crate) fn ids_from_rows(rs: minidb::ResultSet) -> Vec<i64> {
    rs.rows
        .into_iter()
        .filter_map(|r| match r.first() {
            Some(Value::Int(i)) => Some(*i),
            _ => None,
        })
        .collect()
}

/// Execute an already-built match plan; returns sorted matching object
/// ids. Independent per-criterion subtrees run on parallel worker
/// threads (see [`Database::execute_parallel`]).
pub fn execute_match_plan(db: &Database, plan: &Plan) -> Result<Vec<i64>> {
    let reg = obs::global();
    let rs = {
        let _span = reg.span("catalog.query.match");
        db.execute_parallel(plan)?
    };
    reg.counter("catalog.query.count").incr();
    Ok(ids_from_rows(rs))
}

/// [`execute_match_plan`] under a request context: the executor charges
/// rows/bytes against the request's budget and checks its deadline
/// cooperatively, including inside parallel subplan forks.
pub fn execute_match_plan_ctx(
    db: &Database,
    plan: &Plan,
    ctx: &crate::reqctx::RequestCtx,
) -> Result<Vec<i64>> {
    let reg = obs::global();
    let rs = {
        let _span = reg.span("catalog.query.match");
        db.execute_parallel_with(plan, &ctx.budget)?
    };
    reg.counter("catalog.query.count").incr();
    Ok(ids_from_rows(rs))
}

/// Execute an [`ObjectQuery`]; returns sorted matching object ids.
pub fn run_query(
    db: &Database,
    defs: &DefsRegistry,
    query: &ObjectQuery,
    strategy: MatchStrategy,
) -> Result<Vec<i64>> {
    run_query_styled(db, defs, query, strategy, PlanStyle::default())
}

/// [`run_query`] with an explicit [`PlanStyle`].
pub fn run_query_styled(
    db: &Database,
    defs: &DefsRegistry,
    query: &ObjectQuery,
    strategy: MatchStrategy,
    style: PlanStyle,
) -> Result<Vec<i64>> {
    let reg = obs::global();
    let plan = {
        let _span = reg.span("catalog.query.plan_build");
        build_query_plan_styled(defs, query, strategy, style)?
    };
    execute_match_plan(db, &plan)
}

/// The simplification the paper notes (§4): when no criterion has
/// sub-attributes and no queried attribute repeats within an object,
/// matching collapses to an `elems ⋈ criteria` pass grouped by object.
/// Exposed for the E2 ablation; produces the same answer as
/// [`MatchStrategy::Exact`] whenever its preconditions hold.
pub fn run_flat_query(db: &Database, defs: &DefsRegistry, query: &ObjectQuery) -> Result<Vec<i64>> {
    run_flat_query_styled(db, defs, query, PlanStyle::default())
}

/// [`run_flat_query`] with an explicit [`PlanStyle`].
pub fn run_flat_query_styled(
    db: &Database,
    defs: &DefsRegistry,
    query: &ObjectQuery,
    style: PlanStyle,
) -> Result<Vec<i64>> {
    let mut per_attr_plans: Vec<Plan> = Vec::new();
    for aq in &query.attrs {
        let node = resolve(defs, aq, None)?;
        if !node.children.is_empty() {
            return Err(CatalogError::BadQuery(
                "flat matching does not support sub-attribute criteria".into(),
            ));
        }
        per_attr_plans.push(Plan::Distinct {
            input: Box::new(
                direct_instances_plan(&node, style)
                    .project(vec![(Expr::col(0), "object_id".into())]),
            ),
        });
    }
    let mut it = per_attr_plans.into_iter();
    let mut plan = it.next().ok_or_else(|| CatalogError::BadQuery("empty query".into()))?;
    for next in it {
        plan = intersect_objects(plan, next, style);
    }
    let rs = db.execute_parallel(&Plan::Sort { input: Box::new(plan), keys: vec![(0, false)] })?;
    Ok(ids_from_rows(rs))
}
