//! Per-request governance context: deadline, resource budgets, and a
//! query id, threaded through plan/match/response so every stage of a
//! catalog request — executor loops, CLOB assembly, document building —
//! charges the same [`Budget`] and stops at the same deadline.
//!
//! Cancellation is cooperative: stages call [`RequestCtx::check`] (or
//! run plans through `execute_*_with`) at loop boundaries, so a request
//! never holds a worker slot for more than one check interval past its
//! deadline. A cancelled request is observable: [`RequestCtx::note_cancelled`]
//! bumps `catalog.cancelled.deadline` / `catalog.cancelled.budget` and
//! records the offending query in the slow-query ring.

use crate::error::{CatalogError, Result};
use minidb::limits::{Budget, ExecLimits};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Process-wide request id source; ids only need to be unique enough to
/// correlate a slow-ring entry with a log line.
static NEXT_QUERY_ID: AtomicU64 = AtomicU64::new(1);

/// Governance context for one catalog request (see the module docs).
/// Cheap to clone; all clones share one budget tracker.
#[derive(Debug, Clone)]
pub struct RequestCtx {
    /// Id correlating this request across metrics and the slow ring.
    pub query_id: u64,
    /// Shared deadline/row/byte tracker for the whole request.
    pub budget: Arc<Budget>,
    /// Human-readable description of the request (e.g. the query DSL),
    /// recorded with cancellation events.
    pub detail: Option<String>,
}

impl RequestCtx {
    /// Context with no limits: checks always pass, charges only count.
    pub fn unbounded() -> RequestCtx {
        RequestCtx::with_limits(ExecLimits::none())
    }

    /// Context enforcing `limits` from now on.
    pub fn with_limits(limits: ExecLimits) -> RequestCtx {
        RequestCtx {
            query_id: NEXT_QUERY_ID.fetch_add(1, Ordering::Relaxed),
            budget: Arc::new(Budget::new(limits)),
            detail: None,
        }
    }

    /// Context with a deadline `d` from now.
    pub fn deadline_in(d: Duration) -> RequestCtx {
        RequestCtx::with_limits(ExecLimits::deadline_in(d))
    }

    /// Attach a request description for cancellation records.
    pub fn describe(mut self, detail: impl Into<String>) -> RequestCtx {
        self.detail = Some(detail.into());
        self
    }

    /// Cooperative check outside the executor (response assembly,
    /// CLOB resolution loops): errors once the deadline has passed.
    #[inline]
    pub fn check(&self) -> Result<()> {
        self.budget.check_deadline().map_err(CatalogError::from)
    }

    /// Charge response-assembly bytes (CLOB text, envelope bytes)
    /// against the request's byte budget.
    #[inline]
    pub fn charge_bytes(&self, n: u64) -> Result<()> {
        self.budget.charge_bytes(n).map_err(CatalogError::from)
    }

    /// If `err` is a governance error, record it: bump
    /// `catalog.cancelled.deadline` or `catalog.cancelled.budget` and
    /// push the offending query into the slow-query ring. Call once at
    /// the request boundary; passes `err` through either way.
    pub fn note_cancelled(&self, err: CatalogError) -> CatalogError {
        let (metric, kind) = match &err {
            CatalogError::DeadlineExceeded(_) => ("catalog.cancelled.deadline", "deadline"),
            CatalogError::BudgetExceeded(_) => ("catalog.cancelled.budget", "budget"),
            _ => return err,
        };
        let reg = obs::global();
        reg.counter(metric).incr();
        let detail = match &self.detail {
            Some(d) => format!("q={} {kind}: {d}", self.query_id),
            None => format!("q={} {kind}", self.query_id),
        };
        reg.record_event(metric, self.budget.elapsed().as_nanos() as u64, Some(detail));
        err
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn unbounded_ctx_checks_pass() {
        let ctx = RequestCtx::unbounded();
        ctx.check().unwrap();
        ctx.charge_bytes(1 << 40).unwrap();
        assert!(ctx.budget.is_unlimited());
    }

    #[test]
    fn query_ids_are_distinct() {
        let a = RequestCtx::unbounded();
        let b = RequestCtx::unbounded();
        assert_ne!(a.query_id, b.query_id);
    }

    #[test]
    fn expired_deadline_maps_to_catalog_error() {
        let ctx = RequestCtx::with_limits(ExecLimits::none().with_deadline(Instant::now()));
        let err = ctx.check().unwrap_err();
        assert!(matches!(err, CatalogError::DeadlineExceeded(_)), "{err}");
    }

    #[test]
    fn note_cancelled_records_counter_and_ring() {
        let ctx = RequestCtx::deadline_in(Duration::ZERO).describe("/exp[user='ada']");
        std::thread::sleep(Duration::from_millis(1));
        let err = ctx.check().unwrap_err();
        let reg = obs::global();
        let before = reg.counter("catalog.cancelled.deadline").get();
        let err = ctx.note_cancelled(err);
        assert!(matches!(err, CatalogError::DeadlineExceeded(_)));
        assert_eq!(reg.counter("catalog.cancelled.deadline").get(), before + 1);
        let seen = reg.slow_events().iter().any(|e| {
            e.name == "catalog.cancelled.deadline"
                && e.detail.as_deref().is_some_and(|d| d.contains("/exp[user='ada']"))
        });
        assert!(seen, "cancellation not recorded in slow ring");
    }

    #[test]
    fn non_governance_errors_pass_through_untouched() {
        let ctx = RequestCtx::unbounded();
        let reg = obs::global();
        let before = reg.counter("catalog.cancelled.deadline").get()
            + reg.counter("catalog.cancelled.budget").get();
        let err = ctx.note_cancelled(CatalogError::NoSuchObject(7));
        assert!(matches!(err, CatalogError::NoSuchObject(7)));
        let after = reg.counter("catalog.cancelled.deadline").get()
            + reg.counter("catalog.cancelled.budget").get();
        assert_eq!(before, after);
    }
}
