//! The catalog façade: ingest, query, and response building in one
//! object (what myLEAD's server exposes to the grid).

use crate::defs::{AttrId, DefLevel, DefsRegistry, DynamicAttrSpec};
use crate::engine::{execute_match_plan, run_flat_query, MatchStrategy};
use crate::error::{CatalogError, Result};
use crate::ordering::GlobalOrdering;
use crate::partition::Partition;
use crate::qparse::normalize_query;
use crate::query::ObjectQuery;
use crate::reqctx::RequestCtx;
use crate::response;
use crate::shred::{DynamicConvention, ShredOptions, ShreddedDoc, Shredder};
use crate::store;
use minidb::{Database, Expr, Plan, Value};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering as AtomicOrdering};
use std::sync::Arc;
use xmlkit::dom::Document;

/// Maximum cached match plans; least-recently-used entries are evicted.
const PLAN_CACHE_CAP: usize = 128;

/// One cached plan, tagged with the defs epoch it was built under.
struct CacheEntry {
    epoch: u64,
    last_used: u64,
    plan: Arc<Plan>,
}

/// LRU cache of built match plans keyed by `(strategy, normalized
/// query)`. Entries built under an older definitions epoch are treated
/// as absent (new definitions can change how a query resolves).
#[derive(Default)]
struct PlanCache {
    map: HashMap<String, CacheEntry>,
    tick: u64,
}

impl PlanCache {
    fn get(&mut self, key: &str, epoch: u64) -> Option<Arc<Plan>> {
        self.tick += 1;
        match self.map.get_mut(key) {
            Some(e) if e.epoch == epoch => {
                e.last_used = self.tick;
                Some(e.plan.clone())
            }
            Some(_) => {
                self.map.remove(key);
                None
            }
            None => None,
        }
    }

    fn put(&mut self, key: String, epoch: u64, plan: Arc<Plan>) {
        self.tick += 1;
        if self.map.len() >= PLAN_CACHE_CAP && !self.map.contains_key(&key) {
            if let Some(victim) =
                self.map.iter().min_by_key(|(_, e)| e.last_used).map(|(k, _)| k.clone())
            {
                self.map.remove(&victim);
            }
        }
        let last_used = self.tick;
        self.map.insert(key, CacheEntry { epoch, last_used, plan });
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

/// Catalog configuration.
#[derive(Debug, Clone, Default)]
pub struct CatalogConfig {
    /// Dynamic-attribute naming convention (LEAD's by default).
    pub convention: DynamicConvention,
    /// Shredding strictness.
    pub shred: ShredOptions,
    /// Auto-register unknown dynamic attributes from their first
    /// occurrence instead of storing them CLOB-only.
    pub auto_register: bool,
    /// Query matching strategy.
    pub strategy: MatchStrategy,
}

/// Aggregate catalog statistics (storage accounting for E6).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CatalogStats {
    /// Cataloged objects.
    pub objects: usize,
    /// Attribute instance rows.
    pub attr_rows: usize,
    /// Element instance rows.
    pub elem_rows: usize,
    /// Inverted-list rows.
    pub ancestor_rows: usize,
    /// Stored CLOBs.
    pub clob_count: usize,
    /// Total CLOB bytes.
    pub clob_bytes: usize,
    /// Registered attribute definitions.
    pub attr_defs: usize,
    /// Registered element definitions.
    pub elem_defs: usize,
    /// Relational tables in the store (constant for the hybrid design —
    /// the E5 contrast with inlining's per-structure table growth).
    pub table_count: usize,
}

/// A hybrid XML-relational metadata catalog.
pub struct MetadataCatalog {
    db: Database,
    partition: Partition,
    ordering: GlobalOrdering,
    defs: RwLock<DefsRegistry>,
    config: CatalogConfig,
    next_object: AtomicI64,
    /// Bumped whenever attribute definitions change; cached plans from
    /// older epochs are invalid.
    defs_epoch: AtomicU64,
    plan_cache: Mutex<PlanCache>,
}

impl MetadataCatalog {
    /// Create a catalog over a partitioned schema.
    pub fn new(partition: Partition, config: CatalogConfig) -> Result<MetadataCatalog> {
        Self::bootstrap(Database::new(), partition, config)
    }

    /// Build a catalog into an empty database (freshly created, or a
    /// durable database whose directory held no prior state).
    pub(crate) fn bootstrap(
        db: Database,
        partition: Partition,
        config: CatalogConfig,
    ) -> Result<MetadataCatalog> {
        store::create_tables(&db)?;
        let ordering = GlobalOrdering::new(&partition);
        store::load_ordering(&db, &ordering)?;
        let defs = DefsRegistry::from_partition(&partition, &ordering);
        store::sync_defs(&db, &defs)?;
        Ok(MetadataCatalog {
            db,
            partition,
            ordering,
            defs: RwLock::new(defs),
            config,
            next_object: AtomicI64::new(1),
            defs_epoch: AtomicU64::new(0),
            plan_cache: Mutex::new(PlanCache::default()),
        })
    }

    /// Assemble a catalog from already-loaded parts (snapshot loading).
    pub(crate) fn from_parts(
        db: Database,
        partition: Partition,
        ordering: GlobalOrdering,
        defs: DefsRegistry,
        config: CatalogConfig,
        next_object: i64,
    ) -> Result<MetadataCatalog> {
        store::sync_defs(&db, &defs)?;
        Ok(MetadataCatalog {
            db,
            partition,
            ordering,
            defs: RwLock::new(defs),
            config,
            next_object: AtomicI64::new(next_object),
            defs_epoch: AtomicU64::new(0),
            plan_cache: Mutex::new(PlanCache::default()),
        })
    }

    /// The partition this catalog serves.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// The global schema ordering.
    pub fn ordering(&self) -> &GlobalOrdering {
        &self.ordering
    }

    /// The underlying database, for SQL inspection of the store.
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// Register a dynamic attribute at the dynamic root addressed by
    /// `anchor_path` (e.g. `/LEADresource/data/geospatial/eainfo/detailed`).
    pub fn register_dynamic(
        &self,
        anchor_path: &str,
        spec: &DynamicAttrSpec,
        level: DefLevel,
    ) -> Result<AttrId> {
        let anchor =
            self.partition.schema().resolve_path(anchor_path).ok_or_else(|| {
                CatalogError::Definition(format!("no schema node at {anchor_path}"))
            })?;
        let mut defs = self.defs.write();
        let id = defs.register_dynamic(&self.partition, &self.ordering, anchor, spec, level)?;
        store::sync_defs(&self.db, &defs)?;
        self.defs_epoch.fetch_add(1, AtomicOrdering::SeqCst);
        Ok(id)
    }

    /// Parse and shred a document *without* storing it (the CPU-bound
    /// half of ingest; used by parallel ingest pipelines).
    pub fn shred_only(&self, xml: &str) -> Result<ShreddedDoc> {
        let reg = obs::global();
        let doc = {
            let _span = reg.span("catalog.parse");
            Document::parse(xml)?
        };
        let defs = self.defs.read();
        let shredder = Shredder::new(
            &self.partition,
            &self.ordering,
            &self.config.convention,
            self.config.shred.clone(),
        );
        let out = {
            let _span = reg.span("catalog.shred");
            shredder.shred(&doc, &defs)?
        };
        drop(defs);
        if self.config.auto_register && !out.inferred.is_empty() {
            // Register what the document taught us, then re-shred so its
            // rows land in the query tables too.
            {
                let mut defs = self.defs.write();
                for (anchor, spec) in &out.inferred {
                    // Races between ingest threads can register the same
                    // spec twice; the second registration fails benignly.
                    let _ = defs.register_dynamic(
                        &self.partition,
                        &self.ordering,
                        *anchor,
                        spec,
                        DefLevel::Admin,
                    );
                }
                store::sync_defs(&self.db, &defs)?;
                self.defs_epoch.fetch_add(1, AtomicOrdering::SeqCst);
            }
            let defs = self.defs.read();
            let shredder = Shredder::new(
                &self.partition,
                &self.ordering,
                &self.config.convention,
                self.config.shred.clone(),
            );
            let _span = reg.span("catalog.shred");
            return shredder.shred(&doc, &defs);
        }
        Ok(out)
    }

    /// Store a shredded document under a fresh object id. One
    /// transaction: on a durable catalog a crash either keeps the whole
    /// document (object row, instance rows, CLOBs) or none of it.
    pub fn apply(
        &self,
        shredded: &ShreddedDoc,
        owner: Option<&str>,
        name: Option<&str>,
    ) -> Result<i64> {
        let object_id = self.next_object.fetch_add(1, AtomicOrdering::Relaxed);
        let mut txn = self.db.txn();
        txn.insert(
            "objects",
            vec![vec![
                Value::Int(object_id),
                owner.map(|s| Value::Str(s.into())).unwrap_or(Value::Null),
                name.map(|s| Value::Str(s.into())).unwrap_or(Value::Null),
            ]],
        )?;
        Self::apply_rows(&mut txn, object_id, shredded)?;
        txn.commit()?;
        Ok(object_id)
    }

    /// Insert a shredded batch's rows under an existing object id, into
    /// an open transaction.
    fn apply_rows(txn: &mut minidb::Txn<'_>, object_id: i64, shredded: &ShreddedDoc) -> Result<()> {
        let reg = obs::global();
        let _span = reg.span("catalog.apply");
        reg.counter("catalog.shred.attr_rows").add(shredded.attrs.len() as u64);
        reg.counter("catalog.shred.elem_rows").add(shredded.elems.len() as u64);
        reg.counter("catalog.clob.bytes_written")
            .add(shredded.clobs.iter().map(|c| c.xml.len() as u64).sum());
        let clob_rows: Vec<Vec<Value>> = shredded
            .clobs
            .iter()
            .map(|c| {
                let locator = txn.put_clob(c.xml.clone().into_bytes());
                vec![
                    Value::Int(object_id),
                    Value::Int(c.attr_id),
                    Value::Int(c.order as i64),
                    Value::Int(c.clob_seq),
                    Value::Int(locator as i64),
                ]
            })
            .collect();
        txn.insert("clobs", clob_rows)?;
        txn.insert(
            "attrs",
            shredded
                .attrs
                .iter()
                .map(|a| {
                    vec![
                        Value::Int(object_id),
                        Value::Int(a.attr_id),
                        Value::Int(a.seq),
                        a.clob_seq.map(Value::Int).unwrap_or(Value::Null),
                    ]
                })
                .collect(),
        )?;
        txn.insert(
            "elems",
            shredded
                .elems
                .iter()
                .map(|e| {
                    vec![
                        Value::Int(object_id),
                        Value::Int(e.attr_id),
                        Value::Int(e.attr_seq),
                        Value::Int(e.elem_id),
                        Value::Int(e.elem_seq),
                        Value::Str(e.value.clone()),
                        e.num.map(Value::Float).unwrap_or(Value::Null),
                    ]
                })
                .collect(),
        )?;
        txn.insert(
            "attr_anc",
            shredded
                .ancestors
                .iter()
                .map(|a| {
                    vec![
                        Value::Int(object_id),
                        Value::Int(a.attr_id),
                        Value::Int(a.seq),
                        Value::Int(a.anc_attr_id),
                        Value::Int(a.anc_seq),
                        Value::Int(a.distance),
                    ]
                })
                .collect(),
        )?;
        Ok(())
    }

    /// Add one attribute instance to an existing object — the paper's
    /// incremental-metadata path (§3/§5: attributes "inserted later").
    /// `fragment_xml` is a single attribute subtree (e.g. a `<theme>`
    /// or `<detailed>` element). Only *new* rows are written: the
    /// schema-level global ordering means no per-document renumbering
    /// (the E7 ablation measures the alternative).
    pub fn add_attribute(&self, object_id: i64, fragment_xml: &str) -> Result<()> {
        // Parse and resolve the fragment before taking any write lock.
        let doc = Document::parse(fragment_xml)?;
        let tag = doc.node(doc.root()).name().unwrap_or("").to_string();
        let schema = self.partition.schema();
        let snode = self
            .partition
            .attr_roots()
            .iter()
            .copied()
            .find(|&n| schema.node(n).name == tag)
            .ok_or_else(|| {
                CatalogError::BadQuery(format!("{tag} is not a metadata attribute of this schema"))
            })?;
        // One transaction for the whole read-modify-write: the
        // existence check and sequence seeds are read through the
        // transaction (which owns the visibility gate), so two
        // concurrent ADDs to the same object cannot both read the same
        // seed and collide, and no reader sees the fragment half
        // applied. Lock order: defs before the transaction's WAL +
        // visibility locks — `register_dynamic` holds the defs write
        // lock while it syncs the definition mirror through its own
        // transaction, so acquiring defs after `txn()` would deadlock.
        let defs = self.defs.read();
        let mut txn = self.db.txn();
        let exists = !txn
            .execute(&Plan::Scan {
                table: "objects".into(),
                filter: Some(Expr::col_eq(0, object_id)),
            })?
            .rows
            .is_empty();
        if !exists {
            return Err(CatalogError::NoSuchObject(object_id));
        }
        // Seed same-sibling counters from the object's current rows so
        // the new instance continues the sequence.
        let mut seq_seed: std::collections::HashMap<crate::defs::AttrId, i64> =
            std::collections::HashMap::new();
        for row in txn
            .execute(&Plan::Scan {
                table: "attrs".into(),
                filter: Some(Expr::col_eq(0, object_id)),
            })?
            .rows
        {
            if let (Some(a), Some(sq)) = (row[1].as_i64(), row[2].as_i64()) {
                let e = seq_seed.entry(a).or_insert(0);
                *e = (*e).max(sq);
            }
        }
        let mut clob_seed: std::collections::HashMap<crate::ordering::OrderId, i64> =
            std::collections::HashMap::new();
        for row in txn
            .execute(&Plan::Scan {
                table: "clobs".into(),
                filter: Some(Expr::col_eq(0, object_id)),
            })?
            .rows
        {
            if let (Some(o), Some(cs)) = (row[2].as_i64(), row[3].as_i64()) {
                let e = clob_seed.entry(o as crate::ordering::OrderId).or_insert(0);
                *e = (*e).max(cs);
            }
        }
        let shredder = Shredder::new(
            &self.partition,
            &self.ordering,
            &self.config.convention,
            self.config.shred.clone(),
        );
        let shredded = shredder.shred_fragment(&doc, &defs, snode, seq_seed, clob_seed)?;
        drop(defs);
        Self::apply_rows(&mut txn, object_id, &shredded)?;
        txn.commit()?;
        Ok(())
    }

    /// Ingest one document: parse, shred, validate, store.
    pub fn ingest(&self, xml: &str) -> Result<i64> {
        let _span = obs::global().span("catalog.ingest");
        let shredded = self.shred_only(xml)?;
        let id = self.apply(&shredded, None, None)?;
        obs::global().counter("catalog.ingest.docs").incr();
        Ok(id)
    }

    /// Ingest with provenance metadata.
    pub fn ingest_as(&self, xml: &str, owner: &str, name: &str) -> Result<i64> {
        let _span = obs::global().span("catalog.ingest");
        let shredded = self.shred_only(xml)?;
        let id = self.apply(&shredded, Some(owner), Some(name))?;
        obs::global().counter("catalog.ingest.docs").incr();
        Ok(id)
    }

    /// Ingest many documents, shredding in parallel on `threads` worker
    /// threads (parse + shred run outside any table lock; only `apply`
    /// serializes on the store).
    pub fn ingest_batch(&self, docs: &[String], threads: usize) -> Result<Vec<i64>> {
        if threads <= 1 || docs.len() < 2 {
            return docs.iter().map(|d| self.ingest(d)).collect();
        }
        let chunk = docs.len().div_ceil(threads);
        let results: Vec<Result<Vec<ShreddedDoc>>> = crossbeam::thread::scope(|scope| {
            let mut handles = Vec::new();
            for part in docs.chunks(chunk) {
                handles.push(scope.spawn(move |_| {
                    part.iter().map(|d| self.shred_only(d)).collect::<Result<Vec<_>>>()
                }));
            }
            handles.into_iter().map(|h| h.join().expect("shred worker panicked")).collect()
        })
        .expect("crossbeam scope");
        let mut ids = Vec::with_capacity(docs.len());
        for batch in results {
            for shredded in batch? {
                ids.push(self.apply(&shredded, None, None)?);
            }
        }
        Ok(ids)
    }

    /// Fetch the match plan for `(strategy, q)` from the LRU plan
    /// cache, building (and caching) it on a miss. Entries are tagged
    /// with the definitions epoch, so [`MetadataCatalog::register_dynamic`]
    /// implicitly invalidates every cached plan.
    fn cached_plan(&self, q: &ObjectQuery, strategy: MatchStrategy) -> Result<Arc<Plan>> {
        let reg = obs::global();
        let epoch = self.defs_epoch.load(AtomicOrdering::SeqCst);
        let key = format!("{strategy:?}|{}", normalize_query(q));
        if let Some(plan) = self.plan_cache.lock().get(&key, epoch) {
            reg.counter("catalog.plan_cache.hit").incr();
            return Ok(plan);
        }
        reg.counter("catalog.plan_cache.miss").incr();
        let plan = {
            let defs = self.defs.read();
            let _span = reg.span("catalog.query.plan_build");
            Arc::new(crate::engine::build_query_plan(&defs, q, strategy)?)
        };
        self.plan_cache.lock().put(key, epoch, plan.clone());
        Ok(plan)
    }

    /// Number of plans currently held by the plan cache.
    pub fn plan_cache_len(&self) -> usize {
        self.plan_cache.lock().len()
    }

    /// Run an attribute query; returns sorted matching object ids.
    pub fn query(&self, q: &ObjectQuery) -> Result<Vec<i64>> {
        let plan = self.cached_plan(q, self.config.strategy)?;
        execute_match_plan(&self.db, &plan)
    }

    /// [`MetadataCatalog::query`] under a request context: the match
    /// plan checks `ctx`'s deadline cooperatively and charges its
    /// row/byte budget. On cancellation the
    /// `catalog.cancelled.{deadline,budget}` counter is bumped and the
    /// offending query recorded in the slow-query ring.
    pub fn query_ctx(&self, q: &ObjectQuery, ctx: &RequestCtx) -> Result<Vec<i64>> {
        let plan = self.cached_plan(q, self.config.strategy)?;
        crate::engine::execute_match_plan_ctx(&self.db, &plan, ctx)
            .map_err(|e| ctx.note_cancelled(e))
    }

    /// Run a query with an explicit strategy (ablations).
    pub fn query_with(&self, q: &ObjectQuery, strategy: MatchStrategy) -> Result<Vec<i64>> {
        let plan = self.cached_plan(q, strategy)?;
        execute_match_plan(&self.db, &plan)
    }

    /// Run a query with an explicit strategy *and* plan style,
    /// bypassing the plan cache (ablations and agreement tests).
    pub fn query_styled(
        &self,
        q: &ObjectQuery,
        strategy: MatchStrategy,
        style: crate::engine::PlanStyle,
    ) -> Result<Vec<i64>> {
        let defs = self.defs.read();
        crate::engine::run_query_styled(&self.db, &defs, q, strategy, style)
    }

    /// The §4 "significantly simplified" flat path (no sub-attributes).
    pub fn query_flat(&self, q: &ObjectQuery) -> Result<Vec<i64>> {
        let defs = self.defs.read();
        run_flat_query(&self.db, &defs, q)
    }

    /// [`MetadataCatalog::query_flat`] with an explicit plan style.
    pub fn query_flat_styled(
        &self,
        q: &ObjectQuery,
        style: crate::engine::PlanStyle,
    ) -> Result<Vec<i64>> {
        let defs = self.defs.read();
        crate::engine::run_flat_query_styled(&self.db, &defs, q, style)
    }

    /// Run the query's match plan under the profiler and render the
    /// operator tree annotated with actual row counts and timings —
    /// `EXPLAIN ANALYZE` for the catalog's query path. The analyzed
    /// plan is exactly the one [`MetadataCatalog::query`] executes.
    pub fn explain_analyze(&self, q: &ObjectQuery) -> Result<String> {
        let plan = self.cached_plan(q, self.config.strategy)?;
        Ok(minidb::explain_analyze(&plan, &self.db)?)
    }

    /// Reconstruct schema-ordered documents for `object_ids`.
    pub fn fetch_documents(&self, object_ids: &[i64]) -> Result<Vec<(i64, String)>> {
        let _span = obs::global().span("catalog.response_build");
        response::build_documents(&self.db, object_ids)
    }

    /// [`MetadataCatalog::fetch_documents`] under a request context:
    /// document reconstruction — including CLOB byte resolution —
    /// respects `ctx`'s deadline and byte budget.
    pub fn fetch_documents_ctx(
        &self,
        object_ids: &[i64],
        ctx: &RequestCtx,
    ) -> Result<Vec<(i64, String)>> {
        let _span = obs::global().span("catalog.response_build");
        response::build_documents_ctx(&self.db, object_ids, ctx).map_err(|e| ctx.note_cancelled(e))
    }

    /// Query then reconstruct: the full Fig-1 pipeline.
    pub fn search(&self, q: &ObjectQuery) -> Result<Vec<(i64, String)>> {
        let ids = self.query(q)?;
        self.fetch_documents(&ids)
    }

    /// Query then wrap matches in a `<results>` envelope.
    pub fn search_envelope(&self, q: &ObjectQuery) -> Result<String> {
        let ids = self.query(q)?;
        let _span = obs::global().span("catalog.response_build");
        response::build_response_envelope(&self.db, &ids)
    }

    /// [`MetadataCatalog::search_envelope`] under a request context:
    /// one budget and one deadline govern match *and* response
    /// assembly — the two halves cannot each spend the full allowance.
    pub fn search_envelope_ctx(&self, q: &ObjectQuery, ctx: &RequestCtx) -> Result<String> {
        let ids = self.query_ctx(q, ctx)?;
        let _span = obs::global().span("catalog.response_build");
        response::build_response_envelope_ctx(&self.db, &ids, ctx)
            .map_err(|e| ctx.note_cancelled(e))
    }

    /// Remove an object and all its stored metadata.
    pub fn delete_object(&self, object_id: i64) -> Result<()> {
        // Existence check inside the transaction: the check and the
        // deletes are one atomic unit, so concurrent deleters race on
        // the gate, not on a stale check.
        let mut txn = self.db.txn();
        let exists = !txn
            .execute(&Plan::Scan {
                table: "objects".into(),
                filter: Some(Expr::col_eq(0, object_id)),
            })?
            .rows
            .is_empty();
        if !exists {
            return Err(CatalogError::NoSuchObject(object_id));
        }
        for table in ["objects", "attrs", "elems", "attr_anc", "clobs"] {
            txn.delete_where(table, &Expr::col_eq(0, object_id))?;
        }
        txn.commit()?;
        Ok(())
    }

    /// Whether this catalog writes through a WAL (see
    /// [`MetadataCatalog::open`]).
    pub fn is_durable(&self) -> bool {
        self.db.is_durable()
    }

    /// Checkpoint a durable catalog: snapshot the whole store and
    /// truncate the WAL. Returns the checkpointed LSN. No-op error-free
    /// path does not exist for in-memory catalogs — those return the
    /// underlying engine error.
    pub fn checkpoint(&self) -> Result<u64> {
        self.db.checkpoint().map_err(Into::into)
    }

    /// Aggregate statistics. All row counts are taken under one read
    /// transaction, so they describe a single committed state — an
    /// in-flight ingest is either fully counted or not at all.
    pub fn stats(&self) -> CatalogStats {
        let defs = self.defs.read();
        let rt = self.db.begin_read();
        CatalogStats {
            objects: rt.row_count("objects").unwrap_or(0),
            attr_rows: rt.row_count("attrs").unwrap_or(0),
            elem_rows: rt.row_count("elems").unwrap_or(0),
            ancestor_rows: rt.row_count("attr_anc").unwrap_or(0),
            clob_count: rt.row_count("clobs").unwrap_or(0),
            clob_bytes: self.db.clobs.total_bytes(),
            attr_defs: defs.attrs().len(),
            elem_defs: defs.elems().len(),
            table_count: self.db.table_names().len(),
        }
    }

    /// Approximate total storage bytes (rows + CLOB heap).
    pub fn approx_bytes(&self) -> usize {
        self.db.approx_bytes()
    }
}
