//! Relational layout of the hybrid catalog (§2, §3).
//!
//! | table | contents |
//! |---|---|
//! | `objects` | one row per cataloged object |
//! | `attrs` | attribute *instances*: (object, attr def, seq, clob seq) |
//! | `elems` | element instances with string + numeric value columns |
//! | `attr_anc` | instance-level inverted list: sub-attribute instance → every ancestor attribute instance with hierarchy distance (what lets nested queries avoid recursive self-joins) |
//! | `clobs` | CLOB locator per top-level attribute instance, keyed by (object, schema order, clob seq) |
//! | `schema_order` | the global ordering: order, tag, last-child order, depth |
//! | `order_anc` | schema-level inverted list: ordered node → ancestors (drives set-based response tagging) |
//! | `attr_defs`, `elem_defs` | definition mirrors for SQL inspection |

use crate::defs::DefsRegistry;
use crate::error::Result;
use crate::ordering::GlobalOrdering;
use minidb::{Column, DataType, Database, TableSchema, Value};

/// Create all catalog tables and indexes inside `db`.
pub fn create_tables(db: &Database) -> Result<()> {
    db.create_table(
        "objects",
        TableSchema::new(vec![
            Column::new("object_id", DataType::Int),
            Column::nullable("owner", DataType::Text),
            Column::nullable("name", DataType::Text),
        ]),
    )?;
    db.create_index("objects", "objects_pk", &["object_id"], true)?;

    db.create_table(
        "attrs",
        TableSchema::new(vec![
            Column::new("object_id", DataType::Int),
            Column::new("attr_id", DataType::Int),
            Column::new("seq", DataType::Int),
            Column::nullable("clob_seq", DataType::Int),
        ]),
    )?;
    db.create_index("attrs", "attrs_pk", &["object_id", "attr_id", "seq"], true)?;
    db.create_index("attrs", "attrs_by_def", &["attr_id"], false)?;

    db.create_table(
        "elems",
        TableSchema::new(vec![
            Column::new("object_id", DataType::Int),
            Column::new("attr_id", DataType::Int),
            Column::new("attr_seq", DataType::Int),
            Column::new("elem_id", DataType::Int),
            Column::new("elem_seq", DataType::Int),
            Column::nullable("value_str", DataType::Text),
            Column::nullable("value_num", DataType::Float),
        ]),
    )?;
    db.create_index("elems", "elems_by_def", &["elem_id", "value_num"], false)?;
    db.create_index("elems", "elems_by_obj", &["object_id", "attr_id", "attr_seq"], false)?;

    db.create_table(
        "attr_anc",
        TableSchema::new(vec![
            Column::new("object_id", DataType::Int),
            Column::new("attr_id", DataType::Int),
            Column::new("seq", DataType::Int),
            Column::new("anc_attr_id", DataType::Int),
            Column::new("anc_seq", DataType::Int),
            Column::new("distance", DataType::Int),
        ]),
    )?;
    db.create_index("attr_anc", "anc_by_child", &["attr_id", "object_id"], false)?;
    db.create_index("attr_anc", "anc_by_parent", &["anc_attr_id", "object_id"], false)?;

    db.create_table(
        "clobs",
        TableSchema::new(vec![
            Column::new("object_id", DataType::Int),
            Column::new("attr_id", DataType::Int),
            Column::new("schema_order", DataType::Int),
            Column::new("clob_seq", DataType::Int),
            Column::new("clob", DataType::Clob),
        ]),
    )?;
    db.create_index("clobs", "clobs_by_obj", &["object_id", "schema_order", "clob_seq"], false)?;

    db.create_table(
        "schema_order",
        TableSchema::new(vec![
            Column::new("order_id", DataType::Int),
            Column::new("tag", DataType::Text),
            Column::new("last_child", DataType::Int),
            Column::new("depth", DataType::Int),
            Column::new("is_attr", DataType::Bool),
        ]),
    )?;
    db.create_index("schema_order", "schema_order_pk", &["order_id"], true)?;

    db.create_table(
        "order_anc",
        TableSchema::new(vec![
            Column::new("order_id", DataType::Int),
            Column::new("anc_order", DataType::Int),
        ]),
    )?;
    db.create_index("order_anc", "order_anc_by_node", &["order_id"], false)?;

    db.create_table(
        "attr_defs",
        TableSchema::new(vec![
            Column::new("attr_id", DataType::Int),
            Column::new("name", DataType::Text),
            Column::nullable("source", DataType::Text),
            Column::nullable("parent", DataType::Int),
            Column::nullable("schema_order", DataType::Int),
            Column::new("dynamic", DataType::Bool),
            Column::new("queryable", DataType::Bool),
            Column::new("level", DataType::Text),
        ]),
    )?;
    db.create_index("attr_defs", "attr_defs_pk", &["attr_id"], true)?;

    db.create_table(
        "elem_defs",
        TableSchema::new(vec![
            Column::new("elem_id", DataType::Int),
            Column::new("attr_id", DataType::Int),
            Column::new("name", DataType::Text),
            Column::nullable("source", DataType::Text),
            Column::new("dtype", DataType::Text),
        ]),
    )?;
    db.create_index("elem_defs", "elem_defs_pk", &["elem_id"], true)?;
    crate::collections::create_collection_tables(db)?;
    Ok(())
}

/// Load the global ordering into `schema_order` and `order_anc`.
pub fn load_ordering(db: &Database, ordering: &GlobalOrdering) -> Result<()> {
    let rows: Vec<Vec<Value>> = ordering
        .nodes()
        .iter()
        .map(|n| {
            vec![
                Value::Int(n.order as i64),
                Value::Str(n.tag.clone()),
                Value::Int(n.last as i64),
                Value::Int(n.depth as i64),
                Value::Bool(n.is_attr_root),
            ]
        })
        .collect();
    db.insert("schema_order", rows)?;
    let anc_rows: Vec<Vec<Value>> = ordering
        .ancestor_pairs()
        .into_iter()
        .map(|(n, a)| vec![Value::Int(n as i64), Value::Int(a as i64)])
        .collect();
    db.insert("order_anc", anc_rows)?;
    Ok(())
}

/// Mirror (or re-mirror) the definitions into `attr_defs`/`elem_defs`.
/// Idempotent: replaces existing mirror rows. One transaction, so a
/// durable catalog never recovers a half-refreshed mirror.
pub fn sync_defs(db: &Database, defs: &DefsRegistry) -> Result<()> {
    let attr_rows: Vec<Vec<Value>> = defs
        .attrs()
        .iter()
        .map(|a| {
            vec![
                Value::Int(a.id),
                Value::Str(a.name.clone()),
                a.source.clone().map(Value::Str).unwrap_or(Value::Null),
                a.parent.map(Value::Int).unwrap_or(Value::Null),
                a.schema_order.map(|o| Value::Int(o as i64)).unwrap_or(Value::Null),
                Value::Bool(a.dynamic),
                Value::Bool(a.queryable),
                Value::Str(match &a.level {
                    crate::defs::DefLevel::Admin => "admin".to_string(),
                    crate::defs::DefLevel::User(u) => format!("user:{u}"),
                }),
            ]
        })
        .collect();
    let elem_rows: Vec<Vec<Value>> = defs
        .elems()
        .iter()
        .map(|e| {
            vec![
                Value::Int(e.id),
                Value::Int(e.attr),
                Value::Str(e.name.clone()),
                e.source.clone().map(Value::Str).unwrap_or(Value::Null),
                Value::Str(e.dtype.name().to_string()),
            ]
        })
        .collect();
    let mut txn = db.txn();
    txn.truncate("attr_defs")?;
    if !attr_rows.is_empty() {
        txn.insert("attr_defs", attr_rows)?;
    }
    txn.truncate("elem_defs")?;
    if !elem_rows.is_empty() {
        txn.insert("elem_defs", elem_rows)?;
    }
    txn.commit()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ordering::GlobalOrdering;
    use crate::partition::{Partition, PartitionSpec};
    use std::sync::Arc;
    use xmlkit::schema::Schema;

    #[test]
    fn create_load_sync() {
        let db = Database::new();
        create_tables(&db).unwrap();
        assert!(db.has_table("attrs"));
        assert!(db.has_table("clobs"));

        let s = Arc::new(Schema::parse_dsl("r { a { x } }").unwrap());
        let p = Partition::new(s, &PartitionSpec::default().attr("/r/a")).unwrap();
        let o = GlobalOrdering::new(&p);
        load_ordering(&db, &o).unwrap();
        assert_eq!(db.row_count("schema_order").unwrap(), 2);
        assert_eq!(db.row_count("order_anc").unwrap(), 1);

        let defs = DefsRegistry::from_partition(&p, &o);
        sync_defs(&db, &defs).unwrap();
        assert_eq!(db.row_count("attr_defs").unwrap(), 1);
        assert_eq!(db.row_count("elem_defs").unwrap(), 1);
        // re-sync is idempotent
        sync_defs(&db, &defs).unwrap();
        assert_eq!(db.row_count("attr_defs").unwrap(), 1);
    }

    #[test]
    fn sql_inspection_works() {
        let db = Database::new();
        create_tables(&db).unwrap();
        let rs = db.execute_sql("SELECT COUNT(*) FROM attrs").unwrap();
        assert_eq!(rs.rows[0][0], Value::Int(0));
    }
}
