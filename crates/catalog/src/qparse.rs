//! Textual query language for [`ObjectQuery`].
//!
//! The paper's users build queries through a GUI tool that "prompts the
//! user with the available attributes and elements"; programs use the
//! Java `MyFile`/`MyAttr` API. This module provides the textual
//! equivalent — handy for shells, tests, and examples:
//!
//! ```text
//! query := attr (';' attr)*                 -- conjunction of criteria
//! attr  := NAME ('@' SOURCE)? pred* subs?
//! pred  := '[' NAME (op value)? ']'         -- bare name = exists
//! op    := = | != | < | <= | > | >= | ~     -- '~' is LIKE
//! value := number | number '..' number | 'string' | "string"
//! subs  := '{' attr (',' attr)* '}'         -- nested sub-attributes
//! ```
//!
//! Examples:
//!
//! ```
//! use catalog::qparse::parse_query;
//! // the paper's §4 example
//! let q = parse_query("grid@ARPS[dx=1000]{grid-stretching@ARPS[dzmin=100]}").unwrap();
//! assert_eq!(q.attrs[0].subs.len(), 1);
//! // structural + range + like
//! parse_query("theme[themekey~'%rain%']; grid@ARPS[dx=250..1500]").unwrap();
//! ```

use crate::error::{CatalogError, Result};
use crate::query::{AttrQuery, ElemCond, ObjectQuery, QOp, QValue};

/// Maximum `{...}` sub-attribute nesting depth the parser accepts.
/// `attr()` recurses once per level, so without a cap an adversarial
/// `a{a{a{...` input drives unbounded stack growth; the schema
/// hierarchies the paper describes are a handful of levels deep.
pub const MAX_QUERY_DEPTH: usize = 16;

/// Maximum total criteria (attributes + element predicates) per query.
/// Each criterion becomes a subtree of the match plan, so an oversized
/// predicate list is a resource-exhaustion vector rather than a
/// plausible query.
pub const MAX_QUERY_CRITERIA: usize = 256;

/// Parse the query language into an [`ObjectQuery`].
pub fn parse_query(src: &str) -> Result<ObjectQuery> {
    let mut p = Parser { src, pos: 0, criteria: 0 };
    let mut q = ObjectQuery::new();
    loop {
        p.skip_ws();
        q = q.attr(p.attr(0)?);
        p.skip_ws();
        if !p.eat(';') {
            break;
        }
    }
    p.skip_ws();
    if p.pos != p.src.len() {
        return Err(p.err("trailing input"));
    }
    if q.attrs.is_empty() {
        return Err(CatalogError::BadQuery("empty query".into()));
    }
    Ok(q)
}

/// Render a query in canonical text for use as a plan-cache key.
///
/// Conjunctions are order-insensitive, so top-level criteria, element
/// conditions, and sibling sub-attribute criteria are each sorted —
/// semantically identical queries written in different orders normalize
/// to the same string. The format is `Debug`-based and not meant to be
/// re-parsed.
pub fn normalize_query(q: &ObjectQuery) -> String {
    let mut parts: Vec<String> = q.attrs.iter().map(normalize_attr).collect();
    parts.sort();
    parts.join(";")
}

fn normalize_attr(a: &AttrQuery) -> String {
    let mut s = a.name.clone();
    if let Some(src) = &a.source {
        s.push('@');
        s.push_str(src);
    }
    let mut elems: Vec<String> = a
        .elems
        .iter()
        .map(|c| format!("[{} {:?} {:?} {:?}]", c.name, c.op, c.value, c.value2))
        .collect();
    elems.sort();
    for e in &elems {
        s.push_str(e);
    }
    if a.direct_subs {
        s.push('!');
    }
    if !a.subs.is_empty() {
        let mut subs: Vec<String> = a.subs.iter().map(normalize_attr).collect();
        subs.sort();
        s.push('{');
        s.push_str(&subs.join(","));
        s.push('}');
    }
    s
}

struct Parser<'a> {
    src: &'a str,
    pos: usize,
    /// Criteria parsed so far (attributes + predicates), capped at
    /// [`MAX_QUERY_CRITERIA`].
    criteria: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> CatalogError {
        CatalogError::BadQuery(format!("{msg} at byte {} of query", self.pos))
    }

    fn peek(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    fn eat(&mut self, c: char) -> bool {
        if self.peek() == Some(c) {
            self.pos += c.len_utf8();
            true
        } else {
            false
        }
    }

    fn skip_ws(&mut self) {
        while self.peek().is_some_and(|c| c.is_whitespace()) {
            self.pos += 1;
        }
    }

    fn name(&mut self) -> Result<String> {
        self.skip_ws();
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_alphanumeric() || c == '_' || c == '-' || c == '.' {
                self.pos += c.len_utf8();
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err("expected a name"));
        }
        Ok(self.src[start..self.pos].to_string())
    }

    /// Count one parsed criterion against [`MAX_QUERY_CRITERIA`].
    fn bump_criteria(&mut self) -> Result<()> {
        self.criteria += 1;
        if self.criteria > MAX_QUERY_CRITERIA {
            return Err(CatalogError::BadQuery(format!(
                "query has more than {MAX_QUERY_CRITERIA} criteria"
            )));
        }
        Ok(())
    }

    fn attr(&mut self, depth: usize) -> Result<AttrQuery> {
        if depth >= MAX_QUERY_DEPTH {
            return Err(CatalogError::BadQuery(format!(
                "query nesting deeper than {MAX_QUERY_DEPTH} levels"
            )));
        }
        self.bump_criteria()?;
        let name = self.name()?;
        let mut aq = AttrQuery::new(name);
        if self.eat('@') {
            aq = aq.source(self.name()?);
        }
        loop {
            self.skip_ws();
            if self.eat('[') {
                self.bump_criteria()?;
                aq = aq.elem(self.pred()?);
            } else {
                break;
            }
        }
        self.skip_ws();
        if self.eat('{') {
            loop {
                self.skip_ws();
                aq = aq.sub(self.attr(depth + 1)?);
                self.skip_ws();
                if !self.eat(',') {
                    break;
                }
            }
            self.skip_ws();
            if !self.eat('}') {
                return Err(self.err("expected '}'"));
            }
        }
        Ok(aq)
    }

    fn pred(&mut self) -> Result<ElemCond> {
        let name = self.name()?;
        self.skip_ws();
        let op = if self.eat('~') {
            Some(QOp::Like)
        } else if self.eat('!') {
            if !self.eat('=') {
                return Err(self.err("expected '!='"));
            }
            Some(QOp::Ne)
        } else if self.eat('<') {
            Some(if self.eat('=') { QOp::Le } else { QOp::Lt })
        } else if self.eat('>') {
            Some(if self.eat('=') { QOp::Ge } else { QOp::Gt })
        } else if self.eat('=') {
            Some(QOp::Eq)
        } else {
            None
        };
        let cond = match op {
            None => ElemCond::exists(name),
            Some(op) => {
                self.skip_ws();
                let value = self.value()?;
                // Range syntax `a..b` promotes = to BETWEEN.
                if op == QOp::Eq && self.src[self.pos..].starts_with("..") {
                    self.pos += 2;
                    let hi = self.value()?;
                    let (QValue::Num(lo), QValue::Num(hi)) = (value.clone(), hi) else {
                        return Err(self.err("range bounds must be numeric"));
                    };
                    ElemCond::between(name, lo, hi)
                } else {
                    match (&op, &value) {
                        (QOp::Like, QValue::Str(p)) => ElemCond::like(name, p.clone()),
                        (QOp::Like, QValue::Num(_)) => {
                            return Err(self.err("'~' needs a string pattern"));
                        }
                        _ => ElemCond { name, op, value, value2: None },
                    }
                }
            }
        };
        self.skip_ws();
        if !self.eat(']') {
            return Err(self.err("expected ']'"));
        }
        Ok(cond)
    }

    fn value(&mut self) -> Result<QValue> {
        self.skip_ws();
        match self.peek() {
            Some(q @ ('\'' | '"')) => {
                self.pos += 1;
                let start = self.pos;
                let end =
                    self.src[start..].find(q).ok_or_else(|| self.err("unterminated string"))?;
                let s = self.src[start..start + end].to_string();
                self.pos = start + end + 1;
                Ok(QValue::Str(s))
            }
            Some(c) if c.is_ascii_digit() || c == '-' || c == '+' => {
                let start = self.pos;
                self.pos += 1;
                while let Some(c2) = self.peek() {
                    // Stop before '..' (range) but accept one '.' of a float.
                    if c2 == '.' && self.src[self.pos..].starts_with("..") {
                        break;
                    }
                    if c2.is_ascii_digit()
                        || c2 == '.'
                        || c2 == 'e'
                        || c2 == 'E'
                        || c2 == '-'
                        || c2 == '+'
                    {
                        self.pos += c2.len_utf8();
                    } else {
                        break;
                    }
                }
                self.src[start..self.pos]
                    .parse::<f64>()
                    .map(QValue::Num)
                    .map_err(|_| self.err("bad number"))
            }
            _ => Err(self.err("expected a value")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lead::fig4_query;

    #[test]
    fn parses_fig4_example() {
        let q = parse_query("grid@ARPS[dx=1000]{grid-stretching@ARPS[dzmin=100]}").unwrap();
        assert_eq!(q, fig4_query());
    }

    #[test]
    fn conjunction_and_whitespace() {
        let q = parse_query(" theme [ themekey = 'rain' ] ;  grid@ARPS [ dx >= 500 ] ").unwrap();
        assert_eq!(q.attrs.len(), 2);
        assert_eq!(q.attrs[0].name, "theme");
        assert_eq!(q.attrs[0].elems[0], ElemCond::eq_str("themekey", "rain"));
        assert_eq!(q.attrs[1].elems[0].op, QOp::Ge);
    }

    #[test]
    fn operators() {
        let q = parse_query("a[x!=1][y<2][z<=3][w>4][v>=5][u~'p%'][t]").unwrap();
        let ops: Vec<QOp> = q.attrs[0].elems.iter().map(|e| e.op).collect();
        assert_eq!(ops, vec![QOp::Ne, QOp::Lt, QOp::Le, QOp::Gt, QOp::Ge, QOp::Like, QOp::Exists]);
    }

    #[test]
    fn range_and_floats() {
        let q = parse_query("g@M[dx=250..1500][dz=0.5]").unwrap();
        assert_eq!(q.attrs[0].elems[0], ElemCond::between("dx", 250.0, 1500.0));
        assert_eq!(q.attrs[0].elems[1], ElemCond::eq_num("dz", 0.5));
    }

    #[test]
    fn nested_and_sibling_subs() {
        let q = parse_query("m@S{a@S{b@S[v=1]}, c@S[w=2]}").unwrap();
        let m = &q.attrs[0];
        assert_eq!(m.subs.len(), 2);
        assert_eq!(m.subs[0].subs[0].name, "b");
        assert_eq!(m.subs[1].name, "c");
    }

    #[test]
    fn string_sources_with_quotes() {
        let q = parse_query(r#"theme[themekt="CF NetCDF"]"#).unwrap();
        assert_eq!(q.attrs[0].elems[0], ElemCond::eq_str("themekt", "CF NetCDF"));
    }

    #[test]
    fn negative_numbers() {
        let q = parse_query("b[westbc=-105.5]").unwrap();
        assert_eq!(q.attrs[0].elems[0], ElemCond::eq_num("westbc", -105.5));
    }

    #[test]
    fn errors() {
        assert!(parse_query("").is_err());
        assert!(parse_query("a[").is_err());
        assert!(parse_query("a[x=]").is_err());
        assert!(parse_query("a[x~5]").is_err());
        assert!(parse_query("a{b").is_err());
        assert!(parse_query("a junk").is_err());
        assert!(parse_query("a[x='unterminated]").is_err());
        assert!(parse_query("a[x=1..'s']").is_err());
    }

    #[test]
    fn adversarial_nesting_is_depth_limited() {
        // At the limit: MAX_QUERY_DEPTH levels parse fine.
        let ok =
            format!("{}x{}", "a{".repeat(MAX_QUERY_DEPTH - 1), "}".repeat(MAX_QUERY_DEPTH - 1));
        parse_query(&ok).unwrap();
        // One past the limit: typed parse error, no unbounded recursion.
        let deep = format!("{}x{}", "a{".repeat(MAX_QUERY_DEPTH), "}".repeat(MAX_QUERY_DEPTH));
        let err = parse_query(&deep).unwrap_err();
        assert!(matches!(err, CatalogError::BadQuery(_)), "{err}");
        // A pathological unclosed tower (the stack-growth attack shape)
        // fails fast too instead of recursing to the end of the input.
        let tower = "a{".repeat(100_000);
        let err = parse_query(&tower).unwrap_err();
        assert!(matches!(err, CatalogError::BadQuery(_)), "{err}");
    }

    #[test]
    fn adversarial_predicate_lists_are_size_limited() {
        // A plausible many-predicate query still parses.
        let ok = format!("a{}", "[p=1]".repeat(100));
        parse_query(&ok).unwrap();
        // An oversized predicate list is rejected with a parse error.
        let big = format!("a{}", "[p=1]".repeat(MAX_QUERY_CRITERIA + 1));
        let err = parse_query(&big).unwrap_err();
        assert!(matches!(err, CatalogError::BadQuery(_)), "{err}");
        // Same cap applies across conjunctions of attributes.
        let wide = vec!["a"; MAX_QUERY_CRITERIA + 1].join(";");
        let err = parse_query(&wide).unwrap_err();
        assert!(matches!(err, CatalogError::BadQuery(_)), "{err}");
    }

    #[test]
    fn normalization_is_order_insensitive() {
        let a = parse_query("theme[themekey='rain']; grid@ARPS[dx=500][dz=1]").unwrap();
        let b = parse_query("grid@ARPS[dz=1][dx=500]; theme[themekey='rain']").unwrap();
        assert_eq!(normalize_query(&a), normalize_query(&b));
        let c = parse_query("grid@ARPS[dz=2][dx=500]; theme[themekey='rain']").unwrap();
        assert_ne!(normalize_query(&a), normalize_query(&c));
        // Nested sibling subs sort too.
        let d = parse_query("m@S{a@S[v=1], c@S[w=2]}").unwrap();
        let e = parse_query("m@S{c@S[w=2], a@S[v=1]}").unwrap();
        assert_eq!(normalize_query(&d), normalize_query(&e));
    }

    #[test]
    fn end_to_end_with_catalog() {
        let cat = crate::lead::lead_catalog(crate::catalog::CatalogConfig::default()).unwrap();
        let id = cat.ingest(crate::lead::FIG3_DOCUMENT).unwrap();
        let q = parse_query("grid@ARPS[dx=1000]{grid-stretching@ARPS[dzmin=100]}").unwrap();
        assert_eq!(cat.query(&q).unwrap(), vec![id]);
        let q2 = parse_query("theme[themekey~'%cloud%']").unwrap();
        assert_eq!(cat.query(&q2).unwrap(), vec![id]);
    }
}
