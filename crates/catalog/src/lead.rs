//! The LEAD schema fixture (Fig 2) and paper examples (Fig 3, §4).
//!
//! The partial LEAD schema from the paper's Figure 2, partitioned the
//! way the figure marks it: bolded nodes are metadata attributes or
//! sub-attributes, italicized nodes are metadata elements, and the
//! circled numbers are the global ordering. The figure's one explicit
//! anchor in the text — the `theme` attribute carries global order
//! **10** — is reproduced exactly (asserted in tests); where the
//! figure's remaining circles are ambiguous in the published scan, the
//! fixture fixes a concrete child order that yields 23 ordered nodes,
//! matching the figure's highest circled number.

use crate::catalog::{CatalogConfig, MetadataCatalog};
use crate::defs::{DefLevel, DynamicAttrSpec};
use crate::error::Result;
use crate::partition::{Partition, PartitionSpec};
use crate::query::{AttrQuery, ElemCond, ObjectQuery};
use std::sync::Arc;
use xmlkit::schema::Schema;
use xmlkit::ValueType;

/// The Fig-2 LEAD schema fragment in the schema DSL.
pub const LEAD_SCHEMA_DSL: &str = "
LEADresource {
  resourceID
  data {
    idinfo {
      status { progress update }
      citation { origin pubdate title }
      timeperd { timeinfo { current begdate? enddate? } }
      keywords? {
        theme*    { themekt themekey+ }
        place*    { placekt placekey+ }
        stratum*  { stratkt stratkey+ }
        temporal* { tempkt tempkey+ }
      }
      useconst?
      accconst?
    }
    geospatial {
      spdom {
        dsgpoly* { polygon }
        bounding { westbc:float eastbc:float northbc:float southbc:float }
      }
      vertdom { vmin:float vmax:float }
      eainfo {
        detailed* {
          enttyp { enttypl enttypds }
          attr* { attrlabl attrdefs attrv? ^attr }
        }
        overview* { eaover eadetcit+ }
      }
    }
  }
}
";

/// Parse the LEAD schema.
pub fn lead_schema() -> Arc<Schema> {
    Arc::new(Schema::parse_dsl(LEAD_SCHEMA_DSL).expect("LEAD schema DSL is valid"))
}

/// Partition the LEAD schema per Figure 2 (bold = attribute).
pub fn lead_partition() -> Partition {
    let spec = PartitionSpec::default()
        .attr("/LEADresource/resourceID")
        .attr("/LEADresource/data/idinfo/status")
        .attr("/LEADresource/data/idinfo/citation")
        .attr("/LEADresource/data/idinfo/timeperd/timeinfo")
        .attr("/LEADresource/data/idinfo/keywords/theme")
        .attr("/LEADresource/data/idinfo/keywords/place")
        .attr("/LEADresource/data/idinfo/keywords/stratum")
        .attr("/LEADresource/data/idinfo/keywords/temporal")
        .attr("/LEADresource/data/idinfo/useconst")
        .attr("/LEADresource/data/idinfo/accconst")
        .attr("/LEADresource/data/geospatial/spdom/dsgpoly")
        .attr("/LEADresource/data/geospatial/spdom/bounding")
        .attr("/LEADresource/data/geospatial/vertdom")
        .dynamic_attr("/LEADresource/data/geospatial/eainfo/detailed")
        .attr("/LEADresource/data/geospatial/eainfo/overview");
    Partition::new(lead_schema(), &spec).expect("Fig-2 partition is valid")
}

/// Path of the LEAD dynamic attribute anchor.
pub const DETAILED_PATH: &str = "/LEADresource/data/geospatial/eainfo/detailed";

/// Register the ARPS grid model-parameter definitions the paper's
/// examples use (§3: namelist-derived dynamic attributes).
pub fn register_arps_defs(catalog: &MetadataCatalog) -> Result<()> {
    catalog.register_dynamic(
        DETAILED_PATH,
        &DynamicAttrSpec::new("grid", "ARPS")
            .element("dx", ValueType::Float)
            .element("dy", ValueType::Float)
            .element("dz", ValueType::Float)
            .sub(
                DynamicAttrSpec::new("grid-stretching", "ARPS")
                    .element("dzmin", ValueType::Float)
                    .element("reference-height", ValueType::Float),
            ),
        DefLevel::Admin,
    )?;
    Ok(())
}

/// Build a LEAD catalog with ARPS definitions registered.
pub fn lead_catalog(config: CatalogConfig) -> Result<MetadataCatalog> {
    let catalog = MetadataCatalog::new(lead_partition(), config)?;
    register_arps_defs(&catalog)?;
    Ok(catalog)
}

/// The metadata document from Figure 3 (normalized to well-formed XML —
/// the figure's listing leaves `resourceID`'s close tag and the final
/// `data`/`LEADresource` closers implicit, and elides siblings with
/// `. . .`).
pub const FIG3_DOCUMENT: &str = "<LEADresource>\
<resourceID>arps-run-42</resourceID>\
<data>\
<idinfo>\
<keywords>\
<theme>\
<themekt>CF NetCDF</themekt>\
<themekey>convective_precipitation_amount</themekey>\
<themekey>convective_precipitation_flux</themekey>\
</theme>\
<theme>\
<themekt>CF NetCDF</themekt>\
<themekey>air_pressure_at_cloud_base</themekey>\
<themekey>air_pressure_at_cloud_top</themekey>\
</theme>\
</keywords>\
</idinfo>\
<geospatial>\
<eainfo>\
<detailed>\
<enttyp>\
<enttypl>grid</enttypl>\
<enttypds>ARPS</enttypds>\
</enttyp>\
<attr>\
<attrlabl>grid-stretching</attrlabl>\
<attrdefs>ARPS</attrdefs>\
<attr>\
<attrlabl>dzmin</attrlabl>\
<attrdefs>ARPS</attrdefs>\
<attrv>100.000</attrv>\
</attr>\
<attr>\
<attrlabl>reference-height</attrlabl>\
<attrdefs>ARPS</attrdefs>\
<attrv>0</attrv>\
</attr>\
</attr>\
<attr>\
<attrlabl>dx</attrlabl>\
<attrdefs>ARPS</attrdefs>\
<attrv>1000.000</attrv>\
</attr>\
<attr>\
<attrlabl>dz</attrlabl>\
<attrdefs>ARPS</attrdefs>\
<attrv>500.000</attrv>\
</attr>\
</detailed>\
</eainfo>\
</geospatial>\
</data>\
</LEADresource>";

/// The §4 example query: objects with horizontal grid spacing
/// `dx = 1000` whose grid stretching has `dzmin = 100` — the Rust
/// equivalent of both the XQuery FLWOR and the Java `MyFile` listing.
pub fn fig4_query() -> ObjectQuery {
    ObjectQuery::new().attr(
        AttrQuery::new("grid").source("ARPS").elem(ElemCond::eq_num("dx", 1000.0)).sub(
            AttrQuery::new("grid-stretching")
                .source("ARPS")
                .elem(ElemCond::eq_num("dzmin", 100.0)),
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ordering::GlobalOrdering;

    #[test]
    fn fig2_global_ordering_anchors() {
        let p = lead_partition();
        let o = GlobalOrdering::new(&p);
        let s = p.schema();
        // 23 ordered nodes, matching the figure's highest circle.
        assert_eq!(o.len(), 23);
        // The paper's explicit anchor: theme is order 10.
        let theme = s.resolve_path("/LEADresource/data/idinfo/keywords/theme").unwrap();
        assert_eq!(o.order_of(theme), Some(10));
        // Root and spine.
        assert_eq!(o.order_of(s.root()), Some(1));
        assert_eq!(o.order_of(s.resolve_path("/LEADresource/resourceID").unwrap()), Some(2));
        assert_eq!(o.order_of(s.resolve_path("/LEADresource/data").unwrap()), Some(3));
        assert_eq!(o.order_of(s.resolve_path("/LEADresource/data/idinfo").unwrap()), Some(4));
        assert_eq!(
            o.order_of(s.resolve_path("/LEADresource/data/idinfo/status").unwrap()),
            Some(5)
        );
        let detailed = s.resolve_path(DETAILED_PATH).unwrap();
        assert_eq!(o.order_of(detailed), Some(22));
        let overview = s.resolve_path("/LEADresource/data/geospatial/eainfo/overview").unwrap();
        assert_eq!(o.order_of(overview), Some(23));
    }

    #[test]
    fn fig2_partition_marks() {
        let p = lead_partition();
        let s = p.schema();
        // status bolded (attribute) with italic children (elements)
        use crate::partition::NodeRole;
        let status = s.resolve_path("/LEADresource/data/idinfo/status").unwrap();
        assert_eq!(p.role(status), NodeRole::AttributeRoot { dynamic: false });
        let progress = s.resolve_path("/LEADresource/data/idinfo/status/progress").unwrap();
        assert_eq!(p.role(progress), NodeRole::Element);
        // the recursive attr subtree is a sub-attribute region inside detailed
        let attr = s.resolve_path(&format!("{DETAILED_PATH}/attr")).unwrap();
        assert_eq!(p.role(attr), NodeRole::SubAttribute);
        // keywords is a wrapper above the theme attribute
        let keywords = s.resolve_path("/LEADresource/data/idinfo/keywords").unwrap();
        assert_eq!(p.role(keywords), NodeRole::Wrapper);
    }

    #[test]
    fn fig3_document_parses() {
        let doc = xmlkit::Document::parse(FIG3_DOCUMENT).unwrap();
        assert_eq!(doc.node(doc.root()).name(), Some("LEADresource"));
    }
}
