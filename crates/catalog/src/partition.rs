//! Schema partitioning: the paper's five rules (§2).
//!
//! The community XML schema is partitioned into **metadata attributes**
//! (concept-level interior nodes; everything below one is stored as a
//! CLOB and shredded for querying), **sub-attributes** (interior nodes
//! inside an attribute), **metadata elements** (leaves inside an
//! attribute), and **structural wrappers** (nodes above all attributes;
//! they never repeat, so the global ordering can live at schema level).
//!
//! Rules enforced by [`Partition::new`]:
//!
//! 1. attribute roots define concepts (designated by the schema owner);
//! 2. any repeating element must be at or below an attribute root;
//! 3. any element declaring XML attribute nodes must be at or below an
//!    attribute root;
//! 4. any recursion must be inside an attribute;
//! 5. every leaf must be inside exactly one attribute (an attribute may
//!    itself be a leaf: "both a metadata attribute and a metadata
//!    element").

use crate::error::{CatalogError, Result};
use std::collections::HashSet;
use std::sync::Arc;
use xmlkit::schema::{ChildRef, Schema, SchemaNodeId};

/// Role of a schema node under a partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeRole {
    /// Above every attribute: part of the document scaffolding that the
    /// response builder re-creates from the global ordering.
    Wrapper,
    /// Root of a metadata attribute subtree.
    AttributeRoot {
        /// True for dynamic attributes (resolved by name+source from
        /// element *values*, e.g. the LEAD `detailed` subtree).
        dynamic: bool,
    },
    /// Interior node strictly inside an attribute subtree.
    SubAttribute,
    /// Leaf inside an attribute subtree: carries a data value.
    Element,
}

/// Declares which schema nodes are metadata attributes.
#[derive(Debug, Clone, Default)]
pub struct PartitionSpec {
    /// Absolute schema paths (e.g. `/LEADresource/data/idinfo/status`)
    /// of structural attribute roots.
    pub structural: Vec<String>,
    /// Absolute schema paths of dynamic attribute roots.
    pub dynamic: Vec<String>,
}

impl PartitionSpec {
    /// Mark a structural attribute root.
    pub fn attr(mut self, path: &str) -> Self {
        self.structural.push(path.to_string());
        self
    }

    /// Mark a dynamic attribute root.
    pub fn dynamic_attr(mut self, path: &str) -> Self {
        self.dynamic.push(path.to_string());
        self
    }
}

/// A validated partition of a schema, plus derived per-node roles.
#[derive(Debug, Clone)]
pub struct Partition {
    schema: Arc<Schema>,
    roles: Vec<NodeRole>,
    attr_roots: Vec<SchemaNodeId>,
}

impl Partition {
    /// Partition `schema` according to `spec`, enforcing the five rules.
    pub fn new(schema: Arc<Schema>, spec: &PartitionSpec) -> Result<Partition> {
        let mut root_set: HashSet<SchemaNodeId> = HashSet::new();
        let mut dynamic_set: HashSet<SchemaNodeId> = HashSet::new();
        for p in &spec.structural {
            let id = schema
                .resolve_path(p)
                .ok_or_else(|| CatalogError::InvalidPartition(format!("no schema node at {p}")))?;
            root_set.insert(id);
        }
        for p in &spec.dynamic {
            let id = schema
                .resolve_path(p)
                .ok_or_else(|| CatalogError::InvalidPartition(format!("no schema node at {p}")))?;
            if !root_set.insert(id) {
                return Err(CatalogError::InvalidPartition(format!(
                    "{p} marked both structural and dynamic"
                )));
            }
            dynamic_set.insert(id);
        }
        if root_set.contains(&schema.root()) {
            return Err(CatalogError::InvalidPartition(
                "the document root cannot be a metadata attribute".into(),
            ));
        }

        // Assign roles by walking from the root, tracking whether we are
        // inside an attribute subtree.
        let mut roles = vec![NodeRole::Wrapper; schema.len()];
        let mut attr_roots = Vec::new();
        let mut stack: Vec<(SchemaNodeId, bool)> = vec![(schema.root(), false)];
        while let Some((id, inside)) = stack.pop() {
            let node = schema.node(id);
            let is_root_here = root_set.contains(&id);
            if is_root_here && inside {
                return Err(CatalogError::InvalidPartition(format!(
                    "attribute {} is nested inside another attribute; \
                     only one attribute may appear on any root-to-leaf path",
                    node.name
                )));
            }
            let now_inside = inside || is_root_here;
            roles[id.index()] = if is_root_here {
                attr_roots.push(id);
                NodeRole::AttributeRoot { dynamic: dynamic_set.contains(&id) }
            } else if inside {
                if node.is_leaf() {
                    NodeRole::Element
                } else {
                    NodeRole::SubAttribute
                }
            } else {
                NodeRole::Wrapper
            };
            for c in node.children.iter().rev() {
                if let ChildRef::Node(n) = c {
                    stack.push((*n, now_inside));
                }
            }
        }
        attr_roots.sort_unstable();

        // Rule checks over the assigned roles.
        for id in schema.preorder() {
            let node = schema.node(id);
            let role = roles[id.index()];
            match role {
                NodeRole::Wrapper => {
                    // Rule 2: repetition must be inside an attribute.
                    if node.cardinality.repeating() {
                        return Err(CatalogError::InvalidPartition(format!(
                            "repeating element {} must be contained within a metadata attribute",
                            node.name
                        )));
                    }
                    // Rule 3: XML attribute nodes must be inside an attribute.
                    if node.declares_xml_attrs {
                        return Err(CatalogError::InvalidPartition(format!(
                            "element {} declares XML attributes and must be within a metadata attribute",
                            node.name
                        )));
                    }
                    // Rule 4: recursion must be inside an attribute.
                    if node.has_recursive_child() {
                        return Err(CatalogError::InvalidPartition(format!(
                            "recursive element {} must be contained within a metadata attribute",
                            node.name
                        )));
                    }
                    // Rule 5: every leaf inside an attribute.
                    if node.is_leaf() {
                        return Err(CatalogError::InvalidPartition(format!(
                            "leaf element {} is not contained in any metadata attribute",
                            node.name
                        )));
                    }
                }
                NodeRole::AttributeRoot { dynamic: true } if node.is_leaf() => {
                    return Err(CatalogError::InvalidPartition(format!(
                        "dynamic attribute {} cannot be a leaf",
                        node.name
                    )));
                }
                _ => {}
            }
        }

        Ok(Partition { schema, roles, attr_roots })
    }

    /// Derive a partition automatically: mark as attribute roots the
    /// shallowest nodes that *must* live inside an attribute (repeating,
    /// XML-attributed, recursive, or leaf), then widen each candidate to
    /// the deepest valid concept node. Subtrees containing recursion are
    /// marked dynamic.
    ///
    /// This realizes the paper's "annotated schema" framework idea for
    /// schemas without hand annotations; hand-written specs (like the
    /// LEAD fixture) take precedence in practice.
    pub fn auto(schema: Arc<Schema>) -> Result<Partition> {
        let mut spec = PartitionSpec::default();
        // A node must be inside an attribute if its subtree repeats,
        // declares xml attrs, recurses, or it is a leaf. Walk top-down;
        // the first node at which "must be inside" becomes true is made
        // an attribute root (choosing the highest legal root keeps
        // wrappers order-stable).
        fn subtree_has_recursion(s: &Schema, id: SchemaNodeId) -> bool {
            let node = s.node(id);
            if node.has_recursive_child() {
                return true;
            }
            node.children.iter().any(|c| match c {
                ChildRef::Node(n) => subtree_has_recursion(s, *n),
                ChildRef::Recurse(_) => true,
            })
        }
        fn walk(s: &Schema, id: SchemaNodeId, spec: &mut PartitionSpec, path: String) {
            let node = s.node(id);
            let here = format!("{path}/{}", node.name);
            let must = node.cardinality.repeating()
                || node.declares_xml_attrs
                || node.is_leaf()
                || node.has_recursive_child();
            if must && s.node(id).parent.is_some() {
                if subtree_has_recursion(s, id) {
                    spec.dynamic.push(here);
                } else {
                    spec.structural.push(here);
                }
                return; // everything below is inside this attribute
            }
            for c in node.children.iter() {
                if let ChildRef::Node(n) = c {
                    walk(s, *n, spec, here.clone());
                }
            }
        }
        walk(&schema, schema.root(), &mut spec, String::new());
        Partition::new(schema, &spec)
    }

    /// The underlying schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Role of a schema node.
    pub fn role(&self, id: SchemaNodeId) -> NodeRole {
        self.roles[id.index()]
    }

    /// All attribute roots in schema order.
    pub fn attr_roots(&self) -> &[SchemaNodeId] {
        &self.attr_roots
    }

    /// True when `id` is an attribute root.
    pub fn is_attr_root(&self, id: SchemaNodeId) -> bool {
        matches!(self.role(id), NodeRole::AttributeRoot { .. })
    }

    /// True when `id` is a dynamic attribute root.
    pub fn is_dynamic_root(&self, id: SchemaNodeId) -> bool {
        matches!(self.role(id), NodeRole::AttributeRoot { dynamic: true })
    }

    /// The attribute root containing `id` (itself included), if any.
    pub fn containing_attr(&self, id: SchemaNodeId) -> Option<SchemaNodeId> {
        let mut cur = Some(id);
        while let Some(c) = cur {
            if self.is_attr_root(c) {
                return Some(c);
            }
            cur = self.schema.node(c).parent;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlkit::schema::Schema;

    fn schema() -> Arc<Schema> {
        Arc::new(
            Schema::parse_dsl(
                "root {
                    id
                    meta {
                        status { progress update }
                        theme* { kt key+ }
                    }
                    detailed* {
                        enttyp { enttypl enttypds }
                        attr* { attrlabl attrdefs attrv? ^attr }
                    }
                 }",
            )
            .unwrap(),
        )
    }

    fn spec() -> PartitionSpec {
        PartitionSpec::default()
            .attr("/root/id")
            .attr("/root/meta/status")
            .attr("/root/meta/theme")
            .dynamic_attr("/root/detailed")
    }

    #[test]
    fn roles_assigned() {
        let s = schema();
        let p = Partition::new(s.clone(), &spec()).unwrap();
        let status = s.resolve_path("/root/meta/status").unwrap();
        assert_eq!(p.role(status), NodeRole::AttributeRoot { dynamic: false });
        let progress = s.resolve_path("/root/meta/status/progress").unwrap();
        assert_eq!(p.role(progress), NodeRole::Element);
        let meta = s.resolve_path("/root/meta").unwrap();
        assert_eq!(p.role(meta), NodeRole::Wrapper);
        let attr = s.resolve_path("/root/detailed/attr").unwrap();
        assert_eq!(p.role(attr), NodeRole::SubAttribute);
        let detailed = s.resolve_path("/root/detailed").unwrap();
        assert!(p.is_dynamic_root(detailed));
        assert_eq!(p.attr_roots().len(), 4);
    }

    #[test]
    fn leaf_attribute_allowed() {
        // `id` is both a metadata attribute and a metadata element.
        let s = schema();
        let p = Partition::new(s.clone(), &spec()).unwrap();
        let id = s.resolve_path("/root/id").unwrap();
        assert!(p.is_attr_root(id));
    }

    #[test]
    fn rule_leaf_must_be_covered() {
        let s = schema();
        let bad = PartitionSpec::default()
            .attr("/root/meta/status")
            .attr("/root/meta/theme")
            .dynamic_attr("/root/detailed"); // /root/id uncovered
        let err = Partition::new(s, &bad).unwrap_err();
        assert!(matches!(err, CatalogError::InvalidPartition(m) if m.contains("leaf")));
    }

    #[test]
    fn rule_repeating_must_be_covered() {
        let s = schema();
        let bad = PartitionSpec::default()
            .attr("/root/id")
            .attr("/root/meta/status")
            .attr("/root/meta/theme/kt")
            .attr("/root/meta/theme/key") // theme itself repeats but is a wrapper now
            .dynamic_attr("/root/detailed");
        let err = Partition::new(s, &bad).unwrap_err();
        assert!(matches!(err, CatalogError::InvalidPartition(m) if m.contains("repeating")));
    }

    #[test]
    fn rule_recursion_must_be_covered() {
        let s = Arc::new(Schema::parse_dsl("r { leaf x { y ^x } }").unwrap());
        let bad = PartitionSpec::default().attr("/r/leaf").attr("/r/x/y");
        let err = Partition::new(s, &bad).unwrap_err();
        assert!(matches!(err, CatalogError::InvalidPartition(m) if m.contains("recursive")));
    }

    #[test]
    fn rule_no_nested_attributes() {
        let s = schema();
        let bad = spec().attr("/root/meta/theme/kt");
        let err = Partition::new(s, &bad).unwrap_err();
        assert!(matches!(err, CatalogError::InvalidPartition(m) if m.contains("nested")));
    }

    #[test]
    fn rule_xml_attrs_must_be_covered() {
        let s = Arc::new(Schema::parse_dsl("r { w@ { leaf } }").unwrap());
        let bad = PartitionSpec::default().attr("/r/w/leaf");
        let err = Partition::new(s, &bad).unwrap_err();
        assert!(matches!(err, CatalogError::InvalidPartition(m) if m.contains("XML attributes")));
    }

    #[test]
    fn root_cannot_be_attribute() {
        let s = schema();
        let bad = PartitionSpec::default().attr("/root");
        assert!(Partition::new(s, &bad).is_err());
    }

    #[test]
    fn auto_partition_valid_and_covers() {
        let s = schema();
        let p = Partition::auto(s.clone()).unwrap();
        // every leaf covered
        for id in s.preorder() {
            if s.node(id).is_leaf() {
                assert!(p.containing_attr(id).is_some(), "leaf {} uncovered", s.node(id).name);
            }
        }
        // detailed subtree must be dynamic (contains recursion)
        let detailed = s.resolve_path("/root/detailed").unwrap();
        assert!(p.is_dynamic_root(detailed));
    }

    #[test]
    fn containing_attr_walks_up() {
        let s = schema();
        let p = Partition::new(s.clone(), &spec()).unwrap();
        let key = s.resolve_path("/root/meta/theme/key").unwrap();
        let theme = s.resolve_path("/root/meta/theme").unwrap();
        assert_eq!(p.containing_attr(key), Some(theme));
        let meta = s.resolve_path("/root/meta").unwrap();
        assert_eq!(p.containing_attr(meta), None);
    }
}
