//! Metadata attribute and element definitions (§2, §3).
//!
//! The catalog keeps a registry of every attribute and element it can
//! shred. **Structural** definitions are derived from the partitioned
//! schema (one per attribute root / sub-attribute / element node).
//! **Dynamic** definitions are registered at run time — by
//! administrators (shared) or users (private) — and are resolved during
//! shredding by *(name, source)* taken from element values, not tags
//! (e.g. LEAD's `enttypl`/`enttypds` and `attrlabl`/`attrdefs`). This
//! is what lets ARPS and WRF both define a `dx` parameter without
//! colliding and without ever touching the community schema.

use crate::error::{CatalogError, Result};
use crate::ordering::{GlobalOrdering, OrderId};
use crate::partition::{NodeRole, Partition};
use std::collections::HashMap;
use xmlkit::schema::SchemaNodeId;
use xmlkit::ValueType;

/// Identifier of an attribute definition.
pub type AttrId = i64;

/// Identifier of an element definition.
pub type ElemId = i64;

/// Who owns a dynamic definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DefLevel {
    /// Shared, administrator-defined.
    Admin,
    /// Private to one user.
    User(String),
}

/// One metadata attribute definition.
#[derive(Debug, Clone)]
pub struct AttrDef {
    /// Internal id.
    pub id: AttrId,
    /// Concept name (element tag for structural; `enttypl`-style value
    /// for dynamic).
    pub name: String,
    /// Defining source/model (`None` for structural attributes, which
    /// the schema disambiguates by position).
    pub source: Option<String>,
    /// Parent attribute definition for sub-attributes.
    pub parent: Option<AttrId>,
    /// Schema node this definition is anchored at: the node itself for
    /// structural definitions, the dynamic root (e.g. `detailed`) for
    /// dynamic ones.
    pub anchor: SchemaNodeId,
    /// Global order of the anchor — where CLOBs for this attribute sit
    /// in reconstructed documents. `None` for sub-attributes.
    pub schema_order: Option<OrderId>,
    /// True for dynamic definitions.
    pub dynamic: bool,
    /// False to store CLOBs only and skip query-side shredding.
    pub queryable: bool,
    /// Ownership level.
    pub level: DefLevel,
}

impl AttrDef {
    /// True when this is a top-level attribute (not a sub-attribute).
    pub fn is_top(&self) -> bool {
        self.parent.is_none()
    }
}

/// One metadata element definition.
#[derive(Debug, Clone)]
pub struct ElemDef {
    /// Internal id.
    pub id: ElemId,
    /// Owning attribute definition.
    pub attr: AttrId,
    /// Element name.
    pub name: String,
    /// Defining source (dynamic elements; defaults to the attribute's).
    pub source: Option<String>,
    /// Declared value type, validated on insert.
    pub dtype: ValueType,
}

/// Specification used to register a dynamic attribute.
#[derive(Debug, Clone)]
pub struct DynamicAttrSpec {
    /// Concept name (matched against e.g. `enttypl`/`attrlabl` values).
    pub name: String,
    /// Defining source (matched against `enttypds`/`attrdefs` values).
    pub source: String,
    /// Typed elements this attribute may carry.
    pub elements: Vec<(String, ValueType)>,
    /// Nested sub-attributes.
    pub subs: Vec<DynamicAttrSpec>,
}

impl DynamicAttrSpec {
    /// New spec with no elements or subs.
    pub fn new(name: impl Into<String>, source: impl Into<String>) -> Self {
        DynamicAttrSpec {
            name: name.into(),
            source: source.into(),
            elements: Vec::new(),
            subs: Vec::new(),
        }
    }

    /// Add a typed element.
    pub fn element(mut self, name: impl Into<String>, dtype: ValueType) -> Self {
        self.elements.push((name.into(), dtype));
        self
    }

    /// Add a sub-attribute.
    #[allow(clippy::should_implement_trait)]
    pub fn sub(mut self, sub: DynamicAttrSpec) -> Self {
        self.subs.push(sub);
        self
    }
}

/// The definition registry.
#[derive(Debug, Default)]
pub struct DefsRegistry {
    attrs: Vec<AttrDef>,
    elems: Vec<ElemDef>,
    /// Structural lookup: schema node → attr def.
    attr_by_node: HashMap<SchemaNodeId, AttrId>,
    /// Structural lookup: schema node → elem def.
    elem_by_node: HashMap<SchemaNodeId, ElemId>,
    /// Dynamic top-level lookup: (anchor, name, source) → attr def.
    dyn_top: HashMap<(SchemaNodeId, String, String), AttrId>,
    /// Dynamic sub-attribute lookup: (parent attr, name, source).
    dyn_sub: HashMap<(AttrId, String, String), AttrId>,
    /// Element lookup by owning attribute: (attr, name).
    elem_by_attr: HashMap<(AttrId, String), ElemId>,
}

impl DefsRegistry {
    /// Build the registry's structural definitions from a partition.
    pub fn from_partition(partition: &Partition, ordering: &GlobalOrdering) -> DefsRegistry {
        let mut reg = DefsRegistry::default();
        let schema = partition.schema();
        for node in schema.preorder() {
            match partition.role(node) {
                NodeRole::AttributeRoot { dynamic } => {
                    let order = ordering.order_of(node).expect("attr roots are ordered");
                    let id = reg.push_attr(AttrDef {
                        id: 0,
                        name: schema.node(node).name.clone(),
                        source: None,
                        parent: None,
                        anchor: node,
                        schema_order: Some(order),
                        dynamic,
                        queryable: !dynamic, // dynamic content is shredded
                        // only under registered (name, source) defs
                        level: DefLevel::Admin,
                    });
                    reg.attr_by_node.insert(node, id);
                    if !dynamic {
                        // Leaf attribute == also an element of itself.
                        if schema.node(node).is_leaf() {
                            let eid = reg.push_elem(ElemDef {
                                id: 0,
                                attr: id,
                                name: schema.node(node).name.clone(),
                                source: None,
                                dtype: schema.node(node).value_type,
                            });
                            reg.elem_by_node.insert(node, eid);
                        }
                        reg.register_structural_children(partition, node, id);
                    }
                }
                NodeRole::Wrapper | NodeRole::SubAttribute | NodeRole::Element => {}
            }
        }
        reg
    }

    fn register_structural_children(
        &mut self,
        partition: &Partition,
        node: SchemaNodeId,
        attr: AttrId,
    ) {
        let schema = partition.schema().clone();
        for c in schema.node(node).children.iter() {
            let xmlkit::schema::ChildRef::Node(child) = c else {
                continue; // recursion only occurs under dynamic roots
            };
            let child_node = schema.node(*child);
            if child_node.is_leaf() {
                let eid = self.push_elem(ElemDef {
                    id: 0,
                    attr,
                    name: child_node.name.clone(),
                    source: None,
                    dtype: child_node.value_type,
                });
                self.elem_by_node.insert(*child, eid);
            } else {
                let sub = self.push_attr(AttrDef {
                    id: 0,
                    name: child_node.name.clone(),
                    source: None,
                    parent: Some(attr),
                    anchor: *child,
                    schema_order: None,
                    dynamic: false,
                    queryable: true,
                    level: DefLevel::Admin,
                });
                self.attr_by_node.insert(*child, sub);
                self.register_structural_children(partition, *child, sub);
            }
        }
    }

    fn push_attr(&mut self, mut def: AttrDef) -> AttrId {
        let id = (self.attrs.len() + 1) as AttrId;
        def.id = id;
        self.attrs.push(def);
        id
    }

    fn push_elem(&mut self, mut def: ElemDef) -> ElemId {
        let id = (self.elems.len() + 1) as ElemId;
        def.id = id;
        let key = (def.attr, def.name.clone());
        self.elems.push(def);
        self.elem_by_attr.insert(key, id);
        id
    }

    /// Register a dynamic attribute tree anchored at `anchor` (which
    /// must be a dynamic attribute root of the partition).
    pub fn register_dynamic(
        &mut self,
        partition: &Partition,
        ordering: &GlobalOrdering,
        anchor: SchemaNodeId,
        spec: &DynamicAttrSpec,
        level: DefLevel,
    ) -> Result<AttrId> {
        if !partition.is_dynamic_root(anchor) {
            return Err(CatalogError::Definition(format!(
                "schema node {} is not a dynamic attribute root",
                partition.schema().node(anchor).name
            )));
        }
        let key = (anchor, spec.name.clone(), spec.source.clone());
        if self.dyn_top.contains_key(&key) {
            return Err(CatalogError::Definition(format!(
                "dynamic attribute ({}, {}) already registered",
                spec.name, spec.source
            )));
        }
        let order = ordering.order_of(anchor);
        let id = self.push_attr(AttrDef {
            id: 0,
            name: spec.name.clone(),
            source: Some(spec.source.clone()),
            parent: None,
            anchor,
            schema_order: order,
            dynamic: true,
            queryable: true,
            level: level.clone(),
        });
        self.dyn_top.insert(key, id);
        self.register_dynamic_children(anchor, id, spec, &level)?;
        Ok(id)
    }

    fn register_dynamic_children(
        &mut self,
        anchor: SchemaNodeId,
        parent: AttrId,
        spec: &DynamicAttrSpec,
        level: &DefLevel,
    ) -> Result<()> {
        for (ename, dtype) in &spec.elements {
            if self.elem_by_attr.contains_key(&(parent, ename.clone())) {
                return Err(CatalogError::Definition(format!(
                    "element {ename} already defined on attribute #{parent}"
                )));
            }
            self.push_elem(ElemDef {
                id: 0,
                attr: parent,
                name: ename.clone(),
                source: Some(spec.source.clone()),
                dtype: *dtype,
            });
        }
        for sub in &spec.subs {
            let key = (parent, sub.name.clone(), sub.source.clone());
            if self.dyn_sub.contains_key(&key) {
                return Err(CatalogError::Definition(format!(
                    "sub-attribute ({}, {}) already registered under #{parent}",
                    sub.name, sub.source
                )));
            }
            let id = self.push_attr(AttrDef {
                id: 0,
                name: sub.name.clone(),
                source: Some(sub.source.clone()),
                parent: Some(parent),
                anchor,
                schema_order: None,
                dynamic: true,
                queryable: true,
                level: level.clone(),
            });
            self.dyn_sub.insert(key, id);
            self.register_dynamic_children(anchor, id, sub, level)?;
        }
        Ok(())
    }

    /// Replay one dynamic attribute definition from a snapshot. The
    /// definition must land on `expect_id` (ids are assigned
    /// sequentially, so replay in ascending id order).
    #[allow(clippy::too_many_arguments)]
    pub fn replay_dynamic_attr(
        &mut self,
        expect_id: AttrId,
        name: &str,
        source: &str,
        parent: Option<AttrId>,
        anchor: SchemaNodeId,
        schema_order: Option<OrderId>,
        level: DefLevel,
    ) -> Result<()> {
        let id = self.push_attr(AttrDef {
            id: 0,
            name: name.to_string(),
            source: Some(source.to_string()),
            parent,
            anchor,
            schema_order,
            dynamic: true,
            queryable: true,
            level,
        });
        if id != expect_id {
            return Err(CatalogError::Definition(format!(
                "snapshot replay assigned attribute id {id}, expected {expect_id}"
            )));
        }
        match parent {
            None => {
                self.dyn_top.insert((anchor, name.to_string(), source.to_string()), id);
            }
            Some(p) => {
                self.dyn_sub.insert((p, name.to_string(), source.to_string()), id);
            }
        }
        Ok(())
    }

    /// Replay one dynamic element definition from a snapshot.
    pub fn replay_dynamic_elem(
        &mut self,
        expect_id: ElemId,
        attr: AttrId,
        name: &str,
        source: Option<&str>,
        dtype: ValueType,
    ) -> Result<()> {
        let id = self.push_elem(ElemDef {
            id: 0,
            attr,
            name: name.to_string(),
            source: source.map(|s| s.to_string()),
            dtype,
        });
        if id != expect_id {
            return Err(CatalogError::Definition(format!(
                "snapshot replay assigned element id {id}, expected {expect_id}"
            )));
        }
        Ok(())
    }

    /// Attribute definition by id.
    pub fn attr(&self, id: AttrId) -> Option<&AttrDef> {
        self.attrs.get((id - 1) as usize)
    }

    /// Element definition by id.
    pub fn elem(&self, id: ElemId) -> Option<&ElemDef> {
        self.elems.get((id - 1) as usize)
    }

    /// Structural attribute definition for a schema node.
    pub fn attr_for_node(&self, node: SchemaNodeId) -> Option<AttrId> {
        self.attr_by_node.get(&node).copied()
    }

    /// Structural element definition for a schema node.
    pub fn elem_for_node(&self, node: SchemaNodeId) -> Option<ElemId> {
        self.elem_by_node.get(&node).copied()
    }

    /// Resolve a dynamic top-level attribute by anchor + name + source.
    pub fn resolve_dynamic_top(
        &self,
        anchor: SchemaNodeId,
        name: &str,
        source: &str,
    ) -> Option<AttrId> {
        self.dyn_top.get(&(anchor, name.to_string(), source.to_string())).copied()
    }

    /// Resolve a dynamic sub-attribute by parent + name + source.
    pub fn resolve_dynamic_sub(&self, parent: AttrId, name: &str, source: &str) -> Option<AttrId> {
        self.dyn_sub.get(&(parent, name.to_string(), source.to_string())).copied()
    }

    /// Resolve an element by owning attribute + name.
    pub fn resolve_elem(&self, attr: AttrId, name: &str) -> Option<ElemId> {
        self.elem_by_attr.get(&(attr, name.to_string())).copied()
    }

    /// Resolve a *queryable* attribute by (name, source) regardless of
    /// nesting — used when shredding queries, which name attributes the
    /// way users think of them.
    pub fn find_attr(
        &self,
        name: &str,
        source: Option<&str>,
        parent: Option<AttrId>,
    ) -> Option<&AttrDef> {
        self.attrs.iter().find(|a| {
            a.name == name
                && a.source.as_deref() == source
                && (parent.is_none() || a.parent == parent)
                && (parent.is_some() || a.parent.is_none())
        })
    }

    /// Resolve an attribute by (name, source) anywhere *under* the
    /// given ancestor definition — queries may skip intervening
    /// sub-attribute levels, exactly as the instance inverted list
    /// does ("a sub-attribute and any parent metadata attribute as
    /// well as intervening sub-attributes", §3).
    pub fn find_attr_under(
        &self,
        name: &str,
        source: Option<&str>,
        ancestor: AttrId,
    ) -> Option<&AttrDef> {
        self.attrs.iter().find(|a| {
            if a.name != name || a.source.as_deref() != source {
                return false;
            }
            let mut cur = a.parent;
            while let Some(p) = cur {
                if p == ancestor {
                    return true;
                }
                cur = self.attr(p).and_then(|d| d.parent);
            }
            false
        })
    }

    /// All attribute definitions.
    pub fn attrs(&self) -> &[AttrDef] {
        &self.attrs
    }

    /// All element definitions.
    pub fn elems(&self) -> &[ElemDef] {
        &self.elems
    }

    /// Elements owned by an attribute definition.
    pub fn elems_of(&self, attr: AttrId) -> impl Iterator<Item = &ElemDef> {
        self.elems.iter().filter(move |e| e.attr == attr)
    }

    /// Direct sub-attribute definitions of an attribute definition.
    pub fn subs_of(&self, attr: AttrId) -> impl Iterator<Item = &AttrDef> {
        self.attrs.iter().filter(move |a| a.parent == Some(attr))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::PartitionSpec;
    use std::sync::Arc;
    use xmlkit::schema::Schema;

    fn setup() -> (Arc<Schema>, Partition, GlobalOrdering, DefsRegistry) {
        let s = Arc::new(
            Schema::parse_dsl(
                "root {
                    id
                    status { progress update }
                    theme* { kt key+ }
                    detailed* {
                        enttyp { enttypl enttypds }
                        attr* { attrlabl attrdefs attrv? ^attr }
                    }
                 }",
            )
            .unwrap(),
        );
        let spec = PartitionSpec::default()
            .attr("/root/id")
            .attr("/root/status")
            .attr("/root/theme")
            .dynamic_attr("/root/detailed");
        let p = Partition::new(s.clone(), &spec).unwrap();
        let o = GlobalOrdering::new(&p);
        let reg = DefsRegistry::from_partition(&p, &o);
        (s, p, o, reg)
    }

    #[test]
    fn structural_defs_derived() {
        let (s, _, _, reg) = setup();
        // attrs: id, status, theme, detailed = 4 top-level
        let tops: Vec<_> = reg.attrs().iter().filter(|a| a.is_top()).collect();
        assert_eq!(tops.len(), 4);
        let status_node = s.resolve_path("/root/status").unwrap();
        let status = reg.attr_for_node(status_node).unwrap();
        let elems: Vec<_> = reg.elems_of(status).map(|e| e.name.clone()).collect();
        assert_eq!(elems, vec!["progress", "update"]);
        // theme elements
        let theme = reg.attr_for_node(s.resolve_path("/root/theme").unwrap()).unwrap();
        assert_eq!(reg.elems_of(theme).count(), 2);
        // leaf attribute `id` is its own element
        let id_attr = reg.attr_for_node(s.resolve_path("/root/id").unwrap()).unwrap();
        assert_eq!(reg.elems_of(id_attr).count(), 1);
    }

    #[test]
    fn dynamic_root_not_structurally_shredded() {
        let (s, _, _, reg) = setup();
        let detailed = reg.attr_for_node(s.resolve_path("/root/detailed").unwrap()).unwrap();
        let def = reg.attr(detailed).unwrap();
        assert!(def.dynamic);
        assert!(!def.queryable);
        assert_eq!(reg.elems_of(detailed).count(), 0);
    }

    #[test]
    fn register_and_resolve_dynamic() {
        let (s, p, o, mut reg) = setup();
        let anchor = s.resolve_path("/root/detailed").unwrap();
        let spec = DynamicAttrSpec::new("grid", "ARPS")
            .element("dx", ValueType::Float)
            .element("dz", ValueType::Float)
            .sub(
                DynamicAttrSpec::new("grid-stretching", "ARPS")
                    .element("dzmin", ValueType::Float)
                    .element("reference-height", ValueType::Float),
            );
        let grid = reg.register_dynamic(&p, &o, anchor, &spec, DefLevel::Admin).unwrap();

        assert_eq!(reg.resolve_dynamic_top(anchor, "grid", "ARPS"), Some(grid));
        assert_eq!(reg.resolve_dynamic_top(anchor, "grid", "WRF"), None);
        let sub = reg.resolve_dynamic_sub(grid, "grid-stretching", "ARPS").unwrap();
        assert_eq!(reg.attr(sub).unwrap().parent, Some(grid));
        assert!(reg.resolve_elem(grid, "dx").is_some());
        assert!(reg.resolve_elem(sub, "dzmin").is_some());
        assert!(reg.resolve_elem(grid, "dzmin").is_none());
        // schema_order of the dynamic def equals the anchor's order
        assert_eq!(reg.attr(grid).unwrap().schema_order, o.order_of(anchor));
    }

    #[test]
    fn same_name_different_source() {
        let (s, p, o, mut reg) = setup();
        let anchor = s.resolve_path("/root/detailed").unwrap();
        let a = reg
            .register_dynamic(
                &p,
                &o,
                anchor,
                &DynamicAttrSpec::new("grid", "ARPS"),
                DefLevel::Admin,
            )
            .unwrap();
        let w = reg
            .register_dynamic(&p, &o, anchor, &DynamicAttrSpec::new("grid", "WRF"), DefLevel::Admin)
            .unwrap();
        assert_ne!(a, w);
        assert_eq!(reg.resolve_dynamic_top(anchor, "grid", "WRF"), Some(w));
    }

    #[test]
    fn duplicate_registration_rejected() {
        let (s, p, o, mut reg) = setup();
        let anchor = s.resolve_path("/root/detailed").unwrap();
        reg.register_dynamic(
            &p,
            &o,
            anchor,
            &DynamicAttrSpec::new("grid", "ARPS"),
            DefLevel::Admin,
        )
        .unwrap();
        let err = reg
            .register_dynamic(
                &p,
                &o,
                anchor,
                &DynamicAttrSpec::new("grid", "ARPS"),
                DefLevel::Admin,
            )
            .unwrap_err();
        assert!(matches!(err, CatalogError::Definition(_)));
    }

    #[test]
    fn register_requires_dynamic_root() {
        let (s, p, o, mut reg) = setup();
        let status = s.resolve_path("/root/status").unwrap();
        let err = reg
            .register_dynamic(&p, &o, status, &DynamicAttrSpec::new("x", "Y"), DefLevel::Admin)
            .unwrap_err();
        assert!(matches!(err, CatalogError::Definition(_)));
    }

    #[test]
    fn user_level_defs() {
        let (s, p, o, mut reg) = setup();
        let anchor = s.resolve_path("/root/detailed").unwrap();
        let id = reg
            .register_dynamic(
                &p,
                &o,
                anchor,
                &DynamicAttrSpec::new("private", "ME"),
                DefLevel::User("alice".into()),
            )
            .unwrap();
        assert_eq!(reg.attr(id).unwrap().level, DefLevel::User("alice".into()));
    }

    #[test]
    fn find_attr_by_name_source() {
        let (s, p, o, mut reg) = setup();
        let anchor = s.resolve_path("/root/detailed").unwrap();
        let grid = reg
            .register_dynamic(
                &p,
                &o,
                anchor,
                &DynamicAttrSpec::new("grid", "ARPS").sub(DynamicAttrSpec::new("st", "ARPS")),
                DefLevel::Admin,
            )
            .unwrap();
        let found = reg.find_attr("grid", Some("ARPS"), None).unwrap();
        assert_eq!(found.id, grid);
        let sub = reg.find_attr("st", Some("ARPS"), Some(grid)).unwrap();
        assert_eq!(sub.parent, Some(grid));
        assert!(reg.find_attr("status", None, None).is_some());
        assert!(reg.find_attr("nothere", None, None).is_none());
    }
}
