//! # mylead-catalog — a hybrid XML-relational grid metadata catalog
//!
//! Reproduction of Jensen, Plale, Pallickara & Sun, *"A Hybrid
//! XML-Relational Grid Metadata Catalog"* (ICPP 2006): scientific
//! metadata exchanged as schema-conforming XML is stored **twice** —
//! per-attribute CLOBs for reconstructing schema-ordered responses, and
//! shredded attribute/element rows (plus inverted lists) for answering
//! *unordered queries over metadata attributes*.
//!
//! Pipeline (the paper's Fig 1):
//!
//! 1. [`partition`] — split the community schema into metadata
//!    attributes / sub-attributes / elements under the five rules;
//! 2. [`ordering`] — compute the schema-level global total ordering
//!    (no per-document order maintenance);
//! 3. [`shred`] — on ingest, store each attribute instance as a CLOB
//!    *and* as query rows, resolving dynamic attributes by (name,
//!    source) values with insert-time validation ([`defs`]);
//! 4. [`engine`] — answer [`query::ObjectQuery`] criteria with
//!    set-based plans over the inverted lists (Fig 4);
//! 5. [`response`] — rebuild schema-ordered documents from CLOBs +
//!    the global ordering, tagging entirely with set operations.
//!
//! ```
//! use catalog::prelude::*;
//!
//! let cat = catalog::lead::lead_catalog(CatalogConfig::default()).unwrap();
//! let id = cat.ingest(catalog::lead::FIG3_DOCUMENT).unwrap();
//! let hits = cat.query(&catalog::lead::fig4_query()).unwrap();
//! assert_eq!(hits, vec![id]);
//! ```

#![warn(missing_docs)]

pub mod annotated;
pub mod catalog;
pub mod collections;
pub mod context;
pub mod defs;
pub mod engine;
pub mod error;
pub mod lead;
pub mod ordering;
pub mod partition;
pub mod persist;
pub mod qparse;
pub mod query;
pub mod reqctx;
pub mod response;
pub mod sharded;
pub mod shred;
pub mod store;

/// Common imports for catalog users.
pub mod prelude {
    pub use crate::annotated::parse_annotated;
    pub use crate::catalog::{CatalogConfig, CatalogStats, MetadataCatalog};
    pub use crate::collections::CollectionId;
    pub use crate::context::ContextQuery;
    pub use crate::defs::{AttrId, DefLevel, DefsRegistry, DynamicAttrSpec, ElemId};
    pub use crate::engine::{MatchStrategy, PlanStyle};
    pub use crate::error::{CatalogError, Result};
    pub use crate::ordering::{GlobalOrdering, OrderId};
    pub use crate::partition::{NodeRole, Partition, PartitionSpec};
    pub use crate::qparse::parse_query;
    pub use crate::query::{AttrQuery, ElemCond, ObjectQuery, QOp, QValue};
    pub use crate::reqctx::RequestCtx;
    pub use crate::sharded::ShardedCatalog;
    pub use crate::shred::{DynamicConvention, ShredOptions, Shredder};
}

pub use prelude::*;
