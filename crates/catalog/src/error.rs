//! Catalog error type.

use std::fmt;

/// Error raised by the metadata catalog.
#[derive(Debug, Clone, PartialEq)]
pub enum CatalogError {
    /// Underlying XML parsing/processing failure.
    Xml(xmlkit::XmlError),
    /// Underlying relational engine failure.
    Db(minidb::DbError),
    /// The schema partition violates one of the five partitioning rules.
    InvalidPartition(String),
    /// A document element has no counterpart in the schema.
    UnknownElement {
        /// Path of the offending element.
        path: String,
    },
    /// A dynamic metadata attribute or element failed validation
    /// against the registered definitions.
    Validation(String),
    /// A metadata attribute/element definition problem (duplicate
    /// name+source, missing parent, ...).
    Definition(String),
    /// A query references an unknown attribute or element.
    BadQuery(String),
    /// Object id not present in the catalog.
    NoSuchObject(i64),
    /// The request ran past its deadline; checked cooperatively at
    /// executor and response-assembly loop boundaries, so the caller
    /// gets this instead of a partial result.
    DeadlineExceeded(String),
    /// The request exceeded its row/byte budget.
    BudgetExceeded(String),
}

impl fmt::Display for CatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CatalogError::Xml(e) => write!(f, "XML error: {e}"),
            CatalogError::Db(e) => write!(f, "database error: {e}"),
            CatalogError::InvalidPartition(m) => write!(f, "invalid partition: {m}"),
            CatalogError::UnknownElement { path } => write!(f, "element not in schema: {path}"),
            CatalogError::Validation(m) => write!(f, "validation failed: {m}"),
            CatalogError::Definition(m) => write!(f, "definition error: {m}"),
            CatalogError::BadQuery(m) => write!(f, "bad query: {m}"),
            CatalogError::NoSuchObject(id) => write!(f, "no such object: {id}"),
            // Keep the "deadline exceeded"/"budget exceeded" prefixes:
            // the service maps them onto `ERR deadline ...` /
            // `ERR budget ...` wire replies by prefix.
            CatalogError::DeadlineExceeded(m) => write!(f, "deadline exceeded: {m}"),
            CatalogError::BudgetExceeded(m) => write!(f, "budget exceeded: {m}"),
        }
    }
}

impl std::error::Error for CatalogError {}

impl From<xmlkit::XmlError> for CatalogError {
    fn from(e: xmlkit::XmlError) -> Self {
        CatalogError::Xml(e)
    }
}

impl From<minidb::DbError> for CatalogError {
    fn from(e: minidb::DbError) -> Self {
        match e {
            // Governance errors keep their type across the layer
            // boundary so callers can distinguish "cancelled" from
            // "broken".
            minidb::DbError::DeadlineExceeded(m) => CatalogError::DeadlineExceeded(m),
            minidb::DbError::BudgetExceeded(m) => CatalogError::BudgetExceeded(m),
            other => CatalogError::Db(other),
        }
    }
}

/// Result alias for catalog operations.
pub type Result<T> = std::result::Result<T, CatalogError>;
