//! Catalog persistence: save to / load from a snapshot file.
//!
//! The whole store — including the `attr_defs`/`elem_defs` mirrors —
//! lives in `minidb` tables plus the CLOB heap, so saving is one
//! database snapshot. Loading rebuilds the in-memory definition
//! registry by (a) re-deriving structural definitions from the
//! partition (ids are deterministic) and (b) replaying the mirrored
//! dynamic definitions in id order; a mismatch between the snapshot's
//! structural definitions and the supplied partition is an error (the
//! schema the catalog serves must not silently drift).

use crate::catalog::{CatalogConfig, MetadataCatalog};
use crate::defs::{DefLevel, DefsRegistry};
use crate::error::{CatalogError, Result};
use crate::ordering::{GlobalOrdering, OrderId};
use crate::partition::Partition;
use minidb::{Database, Plan};
use std::path::Path;
use xmlkit::ValueType;

impl MetadataCatalog {
    /// Save the catalog to a snapshot file.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<()> {
        self.db().save_to(path).map_err(Into::into)
    }

    /// Load a catalog from a snapshot written by [`Self::save`]. The
    /// same partitioned schema (and convention/config) must be supplied;
    /// structural definitions are cross-checked against the snapshot.
    pub fn load(
        path: impl AsRef<Path>,
        partition: Partition,
        config: CatalogConfig,
    ) -> Result<MetadataCatalog> {
        let db = Database::load_from(path)?;
        rebuild(db, partition, config)
    }

    /// Open a crash-safe catalog backed by `dir`: every ingest,
    /// deletion, and definition registration commits through a
    /// write-ahead log before it is acknowledged, and
    /// [`MetadataCatalog::checkpoint`] compacts the log into a
    /// snapshot. Reopening the same directory recovers the snapshot
    /// plus the committed WAL tail (a torn final record from a crash
    /// is discarded; mid-log corruption is a hard error).
    pub fn open(
        dir: impl AsRef<Path>,
        partition: Partition,
        config: CatalogConfig,
    ) -> Result<MetadataCatalog> {
        Self::open_with(
            std::sync::Arc::new(minidb::StdVfs::new(dir.as_ref())?),
            minidb::WalOptions::default(),
            partition,
            config,
        )
    }

    /// [`MetadataCatalog::open`] over an explicit VFS and WAL options —
    /// the injection point for group-commit policies and fault-testing
    /// file systems.
    pub fn open_with(
        vfs: std::sync::Arc<dyn minidb::Vfs>,
        opts: minidb::WalOptions,
        partition: Partition,
        config: CatalogConfig,
    ) -> Result<MetadataCatalog> {
        let db = Database::open_with(vfs, opts)?;
        if db.has_table("objects") {
            rebuild(db, partition, config)
        } else {
            MetadataCatalog::bootstrap(db, partition, config)
        }
    }
}

/// Reassemble a catalog around a recovered database: cross-check the
/// structural definition mirror against the supplied partition, replay
/// dynamic definitions, and continue the object-id sequence.
fn rebuild(db: Database, partition: Partition, config: CatalogConfig) -> Result<MetadataCatalog> {
    let ordering = GlobalOrdering::new(&partition);
    let mut defs = DefsRegistry::from_partition(&partition, &ordering);
    let structural_attrs = defs.attrs().len() as i64;
    let structural_elems = defs.elems().len() as i64;

    // Cross-check structural mirror rows, then replay dynamic ones.
    let attr_rows = db.execute(&Plan::Sort {
        input: Box::new(Plan::Scan { table: "attr_defs".into(), filter: None }),
        keys: vec![(0, false)],
    })?;
    for row in &attr_rows.rows {
        let id = row[0].as_i64().ok_or_else(|| bad("attr_defs.attr_id"))?;
        let name = row[1].as_str().ok_or_else(|| bad("attr_defs.name"))?;
        let dynamic = matches!(row[5], minidb::Value::Bool(true));
        if id <= structural_attrs {
            let known = defs.attr(id).ok_or_else(|| {
                CatalogError::Definition(format!("snapshot attribute #{id} unknown"))
            })?;
            if known.name != name || known.dynamic != dynamic {
                return Err(CatalogError::Definition(format!(
                    "snapshot attribute #{id} ({name}) does not match the supplied schema \
                     partition (expected {})",
                    known.name
                )));
            }
            continue;
        }
        if !dynamic {
            return Err(CatalogError::Definition(format!(
                "snapshot attribute #{id} ({name}) is non-structural yet not dynamic"
            )));
        }
        let source = row[2].as_str().ok_or_else(|| bad("attr_defs.source"))?;
        let parent = row[3].as_i64();
        let schema_order = row[4].as_i64().map(|o| o as OrderId);
        let level = match row[7].as_str() {
            Some("admin") | None => DefLevel::Admin,
            Some(other) => match other.strip_prefix("user:") {
                Some(u) => DefLevel::User(u.to_string()),
                None => DefLevel::Admin,
            },
        };
        // Anchor: top-level defs sit at their schema_order's node;
        // sub-attributes share their parent's anchor.
        let anchor = match (parent, schema_order) {
            (Some(p), _) => {
                defs.attr(p)
                    .ok_or_else(|| {
                        CatalogError::Definition(format!(
                            "snapshot attribute #{id} references missing parent #{p}"
                        ))
                    })?
                    .anchor
            }
            (None, Some(order)) => ordering.node(order).node,
            (None, None) => {
                return Err(CatalogError::Definition(format!(
                    "snapshot attribute #{id} has neither parent nor schema order"
                )));
            }
        };
        defs.replay_dynamic_attr(id, name, source, parent, anchor, schema_order, level)?;
    }

    let elem_rows = db.execute(&Plan::Sort {
        input: Box::new(Plan::Scan { table: "elem_defs".into(), filter: None }),
        keys: vec![(0, false)],
    })?;
    for row in &elem_rows.rows {
        let id = row[0].as_i64().ok_or_else(|| bad("elem_defs.elem_id"))?;
        if id <= structural_elems {
            continue; // re-derived from the partition
        }
        let attr = row[1].as_i64().ok_or_else(|| bad("elem_defs.attr_id"))?;
        let name = row[2].as_str().ok_or_else(|| bad("elem_defs.name"))?;
        let source = row[3].as_str();
        let dtype = match row[4].as_str() {
            Some("int") => ValueType::Int,
            Some("float") => ValueType::Float,
            Some("bool") => ValueType::Bool,
            _ => ValueType::Str,
        };
        defs.replay_dynamic_elem(id, attr, name, source, dtype)?;
    }

    // Next object id continues after the largest stored one.
    let next_object = db
        .execute(&Plan::Scan { table: "objects".into(), filter: None })?
        .rows
        .iter()
        .filter_map(|r| r[0].as_i64())
        .max()
        .unwrap_or(0)
        + 1;

    MetadataCatalog::from_parts(db, partition, ordering, defs, config, next_object)
}

fn bad(what: &str) -> CatalogError {
    CatalogError::Definition(format!("snapshot: malformed {what} row"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::defs::DynamicAttrSpec;
    use crate::lead::{fig4_query, lead_catalog, lead_partition, FIG3_DOCUMENT};

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("catalog-snap-{name}-{}", std::process::id()))
    }

    #[test]
    fn save_load_roundtrip() {
        let cat = lead_catalog(CatalogConfig::default()).unwrap();
        let id = cat.ingest(FIG3_DOCUMENT).unwrap();
        cat.register_dynamic(
            crate::lead::DETAILED_PATH,
            &DynamicAttrSpec::new("extra", "WRF").element("x", ValueType::Float),
            DefLevel::User("keisha".into()),
        )
        .unwrap();

        let path = tmp("roundtrip");
        cat.save(&path).unwrap();
        let loaded =
            MetadataCatalog::load(&path, lead_partition(), CatalogConfig::default()).unwrap();
        std::fs::remove_file(&path).ok();

        // Stored data still answers the Fig-4 query and reconstructs.
        assert_eq!(loaded.query(&fig4_query()).unwrap(), vec![id]);
        let doc = loaded.fetch_documents(&[id]).unwrap().remove(0).1;
        assert!(doc.contains("<LEADresource>"));
        // Dynamic definitions (incl. user-level) survived.
        let stats_a = cat.stats();
        let stats_b = loaded.stats();
        assert_eq!(stats_a.attr_defs, stats_b.attr_defs);
        assert_eq!(stats_a.elem_defs, stats_b.elem_defs);
        // New ingests continue the id sequence and remain queryable.
        let id2 = loaded.ingest(FIG3_DOCUMENT).unwrap();
        assert_eq!(id2, id + 1);
        assert_eq!(loaded.query(&fig4_query()).unwrap(), vec![id, id2]);
        // The replayed dynamic definition accepts new documents.
        let extra_doc = "<LEADresource><resourceID>x</resourceID><data>\
            <idinfo><keywords/></idinfo><geospatial><eainfo><detailed>\
            <enttyp><enttypl>extra</enttypl><enttypds>WRF</enttypds></enttyp>\
            <attr><attrlabl>x</attrlabl><attrdefs>WRF</attrdefs><attrv>5</attrv></attr>\
            </detailed></eainfo></geospatial></data></LEADresource>";
        let id3 = loaded.ingest(extra_doc).unwrap();
        let q = crate::qparse::parse_query("extra@WRF[x=5]").unwrap();
        assert_eq!(loaded.query(&q).unwrap(), vec![id3]);
    }

    #[test]
    fn partition_mismatch_rejected() {
        let cat = lead_catalog(CatalogConfig::default()).unwrap();
        cat.ingest(FIG3_DOCUMENT).unwrap();
        let path = tmp("mismatch");
        cat.save(&path).unwrap();
        // A different partition (auto-derived) does not match the saved
        // structural definitions.
        let other = crate::partition::Partition::auto(crate::lead::lead_schema()).unwrap();
        let err = match MetadataCatalog::load(&path, other, CatalogConfig::default()) {
            Err(e) => e,
            Ok(_) => panic!("mismatched partition must be rejected"),
        };
        std::fs::remove_file(&path).ok();
        assert!(matches!(err, CatalogError::Definition(_)));
    }

    #[test]
    fn collections_survive() {
        let cat = lead_catalog(CatalogConfig::default()).unwrap();
        let id = cat.ingest(FIG3_DOCUMENT).unwrap();
        let coll = cat.create_collection("exp", Some("k")).unwrap();
        cat.add_object_to_collection(coll, id).unwrap();
        let path = tmp("collections");
        cat.save(&path).unwrap();
        let loaded =
            MetadataCatalog::load(&path, lead_partition(), CatalogConfig::default()).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded.collection_objects(coll).unwrap(), vec![id]);
        assert_eq!(loaded.query_in_collection(coll, &fig4_query()).unwrap(), vec![id]);
    }
}
