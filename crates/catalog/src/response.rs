//! Query-response construction (§5).
//!
//! The query result is a set of object ids; the response is each
//! object's metadata document, reconstructed in schema order:
//!
//! 1. join the id set with `clobs` — the per-attribute CLOB index —
//!    *without touching the CLOB bytes* (locators only);
//! 2. join with the `order_anc` inverted list to find the distinct
//!    wrapper nodes each object needs (optional attributes may be
//!    absent, so the required-ancestor set is data-dependent);
//! 3. join with `schema_order` to obtain each wrapper's tag and
//!    last-child order — which is what lets *closing* tags be placed
//!    with set operations instead of an external tagging pass
//!    (contrast Shanmugasundaram et al. \[24\]);
//! 4. merge-sort opening tags, CLOB fragments, and closing tags by
//!    `(order, kind, sibling sequence)` and concatenate, touching CLOB
//!    bytes only in this final pass.

use crate::error::Result;
use crate::reqctx::RequestCtx;
use minidb::{Database, Expr, Plan, Value};

/// Sort-merge fragment kinds; the numeric values define the ordering at
/// equal schema order: open(0) < clob(1) < close(2).
const K_OPEN: i64 = 0;
const K_CLOB: i64 = 1;
const K_CLOSE: i64 = 2;

/// Reconstruct schema-ordered XML documents for `object_ids`.
///
/// Returns `(object_id, xml)` pairs in ascending id order; ids with no
/// stored metadata yield an empty string.
pub fn build_documents(db: &Database, object_ids: &[i64]) -> Result<Vec<(i64, String)>> {
    build_documents_ctx(db, object_ids, &RequestCtx::unbounded())
}

/// [`build_documents`] under a request context: every plan charges the
/// request's budget, and the per-object lookup loop, fragment sort-merge
/// input, and final CLOB byte resolution all check the deadline — so
/// reconstruction of a huge response stops cooperatively instead of
/// holding its worker past the deadline.
pub fn build_documents_ctx(
    db: &Database,
    object_ids: &[i64],
    ctx: &RequestCtx,
) -> Result<Vec<(i64, String)>> {
    if object_ids.is_empty() {
        return Ok(Vec::new());
    }
    // All plans (and the final CLOB byte resolution) run under one read
    // transaction: a concurrent ingest or delete commits either before
    // or after the whole reconstruction, never between its steps.
    let rt = db.begin_read();
    // Step 1: CLOB index rows for the result set (locators, not bytes),
    // fetched through the clobs_by_obj index one object at a time so a
    // small result set never scans the whole CLOB index.
    // clobs: object_id=0 attr_id=1 schema_order=2 clob_seq=3 clob=4
    let mut clob_index_rows: Vec<Vec<Value>> = Vec::new();
    for &id in object_ids {
        ctx.check()?;
        let rs = rt.execute_with(
            &Plan::IndexLookup {
                table: "clobs".into(),
                index: "clobs_by_obj".into(),
                key: vec![Value::Int(id)],
                filter: None,
            },
            &ctx.budget,
        )?;
        for mut row in rs.rows {
            // Prepend the id column the downstream joins expect in
            // position 0 (mirrors the former ids ⋈ clobs output shape).
            let mut full = Vec::with_capacity(6);
            full.push(Value::Int(id));
            full.append(&mut row);
            clob_index_rows.push(full);
        }
    }
    let clob_rows = Plan::Values {
        columns: vec![
            "rid".into(),
            "object_id".into(),
            "attr_id".into(),
            "schema_order".into(),
            "clob_seq".into(),
            "clob".into(),
        ],
        rows: clob_index_rows,
    };
    // → cols: rid=0, object_id=1, attr_id=2, schema_order=3, clob_seq=4, clob=5

    // Steps 2+3: distinct required ancestors joined with the global
    // ordering for tags and last-child orders.
    let required = Plan::Distinct {
        input: Box::new(
            clob_rows
                .clone()
                .hash_join(Plan::Scan { table: "order_anc".into(), filter: None }, vec![3], vec![0])
                // + order_anc: order_id=6, anc_order=7
                .project(vec![
                    (Expr::col(0), "object_id".into()),
                    (Expr::col(7), "anc_order".into()),
                ]),
        ),
    };
    // schema_order: order_id=0 tag=1 last_child=2 depth=3 is_attr=4
    let ancestors = required.hash_join(
        Plan::Scan { table: "schema_order".into(), filter: None },
        vec![1],
        vec![0],
    );
    // → object_id=0, anc_order=1, order_id=2, tag=3, last_child=4, depth=5, is_attr=6

    // Step 4a: opening-tag fragments (order, K_OPEN, 0) and closing-tag
    // fragments (last_child, K_CLOSE, -order) — the negative order makes
    // deeper wrappers close first when several close at the same point.
    let opens = ancestors.clone().project(vec![
        (Expr::col(0), "object_id".into()),
        (Expr::col(1), "major".into()),
        (Expr::lit(K_OPEN), "kind".into()),
        (Expr::lit(0i64), "minor".into()),
        (Expr::col(3), "tag".into()),
        (Expr::lit(Value::Null), "clob".into()),
    ]);
    let closes = ancestors.project(vec![
        (Expr::col(0), "object_id".into()),
        (Expr::col(4), "major".into()),
        (Expr::lit(K_CLOSE), "kind".into()),
        (
            Expr::Arith(minidb::ArithOp::Sub, Box::new(Expr::lit(0i64)), Box::new(Expr::col(1))),
            "minor".into(),
        ),
        (Expr::col(3), "tag".into()),
        (Expr::lit(Value::Null), "clob".into()),
    ]);
    // Step 4b: CLOB fragments (order, K_CLOB, clob_seq).
    let clob_frags = clob_rows.project(vec![
        (Expr::col(0), "object_id".into()),
        (Expr::col(3), "major".into()),
        (Expr::lit(K_CLOB), "kind".into()),
        (Expr::col(4), "minor".into()),
        (Expr::lit(Value::Null), "tag".into()),
        (Expr::col(5), "clob".into()),
    ]);

    // Union the three fragment relations and sort: the database returns
    // the response already tagged and ordered.
    let mut all = rt.execute_with(&opens, &ctx.budget)?;
    let more = rt.execute_with(&closes, &ctx.budget)?;
    all.rows.extend(more.rows);
    let clobs_rs = rt.execute_with(&clob_frags, &ctx.budget)?;
    all.rows.extend(clobs_rs.rows);
    ctx.check()?;
    all.rows.sort_by(|a, b| {
        // (object_id, major, kind, minor)
        for i in 0..4 {
            let ord = a[i].total_cmp(&b[i]);
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });

    // Concatenate per object, resolving CLOB locators only now.
    let mut out: Vec<(i64, String)> = Vec::with_capacity(object_ids.len());
    let mut seen: std::collections::HashSet<i64> = std::collections::HashSet::new();
    for (i, row) in all.rows.iter().enumerate() {
        // CLOB byte resolution is the expensive tail of response
        // assembly; keep it cancellable too.
        if i % 256 == 0 {
            ctx.check()?;
        }
        let Some(obj) = row[0].as_i64() else { continue };
        if out.last().map(|(o, _)| *o != obj).unwrap_or(true) {
            out.push((obj, String::new()));
            seen.insert(obj);
        }
        let buf = &mut out.last_mut().expect("pushed above").1;
        match row[2].as_i64() {
            Some(K_OPEN) => {
                buf.push('<');
                buf.push_str(row[4].as_str().unwrap_or(""));
                buf.push('>');
            }
            Some(K_CLOSE) => {
                buf.push_str("</");
                buf.push_str(row[4].as_str().unwrap_or(""));
                buf.push('>');
            }
            Some(K_CLOB) => {
                if let Some(loc) = row[5].as_i64() {
                    if let Ok(text) = db.clobs.get_str(loc as u64) {
                        ctx.charge_bytes(text.len() as u64)?;
                        buf.push_str(&text);
                    }
                }
            }
            _ => {}
        }
    }
    // Objects with no stored CLOBs still appear (empty document).
    for &id in object_ids {
        if !seen.contains(&id) {
            out.push((id, String::new()));
        }
    }
    out.sort_by_key(|(id, _)| *id);
    Ok(out)
}

/// Convenience: wrap several reconstructed documents in a `<results>`
/// envelope (what a catalog service would return to a client).
pub fn build_response_envelope(db: &Database, object_ids: &[i64]) -> Result<String> {
    build_response_envelope_ctx(db, object_ids, &RequestCtx::unbounded())
}

/// [`build_response_envelope`] under a request context (see
/// [`build_documents_ctx`]).
pub fn build_response_envelope_ctx(
    db: &Database,
    object_ids: &[i64],
    ctx: &RequestCtx,
) -> Result<String> {
    let docs = build_documents_ctx(db, object_ids, ctx)?;
    let mut out = String::with_capacity(docs.iter().map(|(_, d)| d.len() + 32).sum());
    out.push_str("<results>");
    for (id, doc) in &docs {
        out.push_str(&format!("<object id=\"{id}\">"));
        out.push_str(doc);
        out.push_str("</object>");
    }
    out.push_str("</results>");
    Ok(out)
}
