//! Context queries (§7 future work).
//!
//! The paper closes on an open problem: myLEAD's GUI "addresses queries
//! from a containment viewpoint, but it does not address searching for
//! objects based on a broader context". This module implements that
//! broader-context search over [`crate::collections`]: find objects by
//! combining criteria on the object itself with criteria on its
//! *context* — the other objects it shares a collection with.
//!
//! Example: "find the radar analyses from experiments whose forecasts
//! used 1 km grid spacing" — the radar file itself carries no grid
//! attribute, but a sibling object in its experiment does.

use crate::catalog::MetadataCatalog;
use crate::collections::CollectionId;
use crate::error::Result;
use crate::query::ObjectQuery;
use minidb::{Expr, Plan};
use std::collections::{BTreeSet, HashMap, HashSet};

/// A context query: criteria on the object and on its collection
/// siblings.
#[derive(Debug, Clone)]
pub struct ContextQuery {
    /// Criteria the object itself must satisfy (`None` = any object).
    pub target: Option<ObjectQuery>,
    /// Criteria some *other* object in a shared collection must satisfy.
    pub context: ObjectQuery,
    /// Require the sibling to be a different object (default true; set
    /// false to let an object satisfy its own context).
    pub distinct_sibling: bool,
}

impl ContextQuery {
    /// Objects matching `target` whose collection context contains an
    /// object matching `context`.
    pub fn new(target: ObjectQuery, context: ObjectQuery) -> ContextQuery {
        ContextQuery { target: Some(target), context, distinct_sibling: true }
    }

    /// Any object whose context matches (no criteria on the object).
    pub fn any_with_context(context: ObjectQuery) -> ContextQuery {
        ContextQuery { target: None, context, distinct_sibling: true }
    }
}

impl MetadataCatalog {
    /// Evaluate a [`ContextQuery`]; returns sorted object ids.
    ///
    /// Membership is taken at the *direct* collection level (an object's
    /// context is every collection it belongs to, expanded over nested
    /// sub-collections from those roots).
    pub fn query_with_context(&self, q: &ContextQuery) -> Result<Vec<i64>> {
        // Candidate targets.
        let targets: Vec<i64> = match &q.target {
            Some(t) => self.query(t)?,
            None => self
                .db()
                .execute(&Plan::Scan { table: "objects".into(), filter: None })?
                .rows
                .iter()
                .filter_map(|r| r[0].as_i64())
                .collect(),
        };
        if targets.is_empty() {
            return Ok(Vec::new());
        }
        let context_hits: HashSet<i64> = self.query(&q.context)?.into_iter().collect();
        if context_hits.is_empty() {
            return Ok(Vec::new());
        }

        // object → direct collections (one scan of the membership table).
        let members = self.db().execute(&Plan::Scan {
            table: "collection_members".into(),
            filter: Some(Expr::col_eq(1, 0i64)), // kind = object
        })?;
        let mut object_colls: HashMap<i64, Vec<CollectionId>> = HashMap::new();
        let mut coll_objects: HashMap<CollectionId, Vec<i64>> = HashMap::new();
        for row in &members.rows {
            if let (Some(c), Some(o)) = (row[0].as_i64(), row[2].as_i64()) {
                object_colls.entry(o).or_default().push(c);
                coll_objects.entry(c).or_default().push(o);
            }
        }
        // collection → parent collections (to widen context upward:
        // a sibling anywhere in the shared experiment counts).
        let links = self.db().execute(&Plan::Scan {
            table: "collection_members".into(),
            filter: Some(Expr::col_eq(1, 1i64)), // kind = collection
        })?;
        let mut parents: HashMap<CollectionId, Vec<CollectionId>> = HashMap::new();
        for row in &links.rows {
            if let (Some(p), Some(c)) = (row[0].as_i64(), row[2].as_i64()) {
                parents.entry(c).or_default().push(p);
            }
        }

        let mut out = BTreeSet::new();
        for &obj in &targets {
            let Some(direct) = object_colls.get(&obj) else { continue };
            // Root set: every ancestor collection of the object.
            let mut roots = HashSet::new();
            let mut stack: Vec<CollectionId> = direct.clone();
            while let Some(c) = stack.pop() {
                if roots.insert(c) {
                    if let Some(ps) = parents.get(&c) {
                        stack.extend(ps.iter().copied());
                    }
                }
            }
            // Context = all objects in any subtree under those roots.
            'ctx: for &root in &roots {
                for sibling in self.collection_objects(root)? {
                    if q.distinct_sibling && sibling == obj {
                        continue;
                    }
                    if context_hits.contains(&sibling) {
                        out.insert(obj);
                        break 'ctx;
                    }
                }
            }
            let _ = coll_objects;
        }
        Ok(out.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::CatalogConfig;
    use crate::lead::lead_catalog;
    use crate::qparse::parse_query;

    fn radar_doc(station: &str) -> String {
        format!(
            "<LEADresource><resourceID>radar-{station}</resourceID><data>\
             <idinfo><keywords><theme><themekt>CF</themekt>\
             <themekey>radar_reflectivity</themekey></theme></keywords></idinfo>\
             </data></LEADresource>"
        )
    }

    fn forecast_doc(dx: f64) -> String {
        format!(
            "<LEADresource><resourceID>fcst</resourceID><data>\
             <idinfo><keywords/></idinfo>\
             <geospatial><eainfo><detailed>\
             <enttyp><enttypl>grid</enttypl><enttypds>ARPS</enttypds></enttyp>\
             <attr><attrlabl>dx</attrlabl><attrdefs>ARPS</attrdefs><attrv>{dx}</attrv></attr>\
             </detailed></eainfo></geospatial></data></LEADresource>"
        )
    }

    #[test]
    fn sibling_context_selects_across_objects() {
        let cat = lead_catalog(CatalogConfig::default()).unwrap();
        // Experiment A: 1 km forecast + its radar input.
        let exp_a = cat.create_collection("exp-a", None).unwrap();
        let radar_a = cat.ingest(&radar_doc("KTLX")).unwrap();
        let fcst_a = cat.ingest(&forecast_doc(1000.0)).unwrap();
        cat.add_object_to_collection(exp_a, radar_a).unwrap();
        cat.add_object_to_collection(exp_a, fcst_a).unwrap();
        // Experiment B: coarse forecast + its radar input.
        let exp_b = cat.create_collection("exp-b", None).unwrap();
        let radar_b = cat.ingest(&radar_doc("KINX")).unwrap();
        let fcst_b = cat.ingest(&forecast_doc(4000.0)).unwrap();
        cat.add_object_to_collection(exp_b, radar_b).unwrap();
        cat.add_object_to_collection(exp_b, fcst_b).unwrap();

        // "Radar files from experiments whose forecast used dx = 1000."
        let q = ContextQuery::new(
            parse_query("theme[themekey='radar_reflectivity']").unwrap(),
            parse_query("grid@ARPS[dx=1000]").unwrap(),
        );
        assert_eq!(cat.query_with_context(&q).unwrap(), vec![radar_a]);
    }

    #[test]
    fn context_respects_distinct_sibling() {
        let cat = lead_catalog(CatalogConfig::default()).unwrap();
        let exp = cat.create_collection("exp", None).unwrap();
        let fcst = cat.ingest(&forecast_doc(1000.0)).unwrap();
        cat.add_object_to_collection(exp, fcst).unwrap();
        // The forecast is the only member: with distinct_sibling it has
        // no context match...
        let q = ContextQuery::new(
            parse_query("grid@ARPS[dx=1000]").unwrap(),
            parse_query("grid@ARPS[dx=1000]").unwrap(),
        );
        assert!(cat.query_with_context(&q).unwrap().is_empty());
        // ...without it, it matches itself.
        let mut q2 = q.clone();
        q2.distinct_sibling = false;
        assert_eq!(cat.query_with_context(&q2).unwrap(), vec![fcst]);
    }

    #[test]
    fn context_reaches_across_nested_collections() {
        let cat = lead_catalog(CatalogConfig::default()).unwrap();
        let campaign = cat.create_collection("campaign", None).unwrap();
        let inputs = cat.create_collection("inputs", None).unwrap();
        let runs = cat.create_collection("runs", None).unwrap();
        cat.add_subcollection(campaign, inputs).unwrap();
        cat.add_subcollection(campaign, runs).unwrap();
        let radar = cat.ingest(&radar_doc("KTLX")).unwrap();
        let fcst = cat.ingest(&forecast_doc(1000.0)).unwrap();
        cat.add_object_to_collection(inputs, radar).unwrap();
        cat.add_object_to_collection(runs, fcst).unwrap();
        // The radar (under inputs) shares the campaign context with the
        // forecast (under runs).
        let q = ContextQuery::new(
            parse_query("theme[themekey='radar_reflectivity']").unwrap(),
            parse_query("grid@ARPS[dx=1000]").unwrap(),
        );
        assert_eq!(cat.query_with_context(&q).unwrap(), vec![radar]);
    }

    #[test]
    fn any_with_context_and_empty_cases() {
        let cat = lead_catalog(CatalogConfig::default()).unwrap();
        let exp = cat.create_collection("exp", None).unwrap();
        let radar = cat.ingest(&radar_doc("KTLX")).unwrap();
        let fcst = cat.ingest(&forecast_doc(1000.0)).unwrap();
        cat.add_object_to_collection(exp, radar).unwrap();
        cat.add_object_to_collection(exp, fcst).unwrap();
        let orphan = cat.ingest(&radar_doc("KINX")).unwrap();

        let q = ContextQuery::any_with_context(parse_query("grid@ARPS[dx=1000]").unwrap());
        // radar shares context with the forecast; the forecast's own
        // context is the radar (which doesn't match); the orphan has
        // no collections at all.
        assert_eq!(cat.query_with_context(&q).unwrap(), vec![radar]);
        let _ = orphan;

        let none = ContextQuery::any_with_context(parse_query("grid@ARPS[dx=77777]").unwrap());
        assert!(cat.query_with_context(&none).unwrap().is_empty());
    }
}
