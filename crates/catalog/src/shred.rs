//! Hybrid shredding (§3).
//!
//! Every attribute instance in an incoming document is stored **twice**:
//!
//! 1. as a **CLOB** — the serialized subtree, keyed by (object, attr
//!    def, global schema order, same-sibling CLOB sequence) — used only
//!    to build query responses; and
//! 2. as **query rows** — attribute / element / ancestor-inverted-list
//!    tuples — used only to answer attribute queries.
//!
//! Because responses come from CLOBs, the query-side shredding does not
//! need to be lossless; and because dynamic attributes are resolved by
//! *(name, source)* values rather than their recursive `attr` structure,
//! "the recurrence disappears" — the inverted list rows flatten every
//! nesting level at insert time.

use crate::defs::{AttrId, DefsRegistry, DynamicAttrSpec, ElemId};
use crate::error::{CatalogError, Result};
use crate::ordering::{GlobalOrdering, OrderId};
use crate::partition::{NodeRole, Partition};
use std::collections::HashMap;
use xmlkit::dom::{Document, NodeId};
use xmlkit::schema::SchemaNodeId;
use xmlkit::{writer, ValueType};

/// How a dynamic attribute subtree encodes names, sources and values
/// (the LEAD schema's `detailed`/`enttyp`/`attr` convention by default).
#[derive(Debug, Clone)]
pub struct DynamicConvention {
    /// Wrapper element holding the attribute's own name/source (e.g.
    /// `enttyp`); `None` reads them from direct children of the root.
    pub head_wrapper: Option<String>,
    /// Tag carrying the attribute name inside the head (e.g. `enttypl`).
    pub head_name_tag: String,
    /// Tag carrying the attribute source inside the head (`enttypds`).
    pub head_source_tag: String,
    /// Tag of nested attribute nodes (`attr`).
    pub node_tag: String,
    /// Tag carrying a nested node's name (`attrlabl`).
    pub name_tag: String,
    /// Tag carrying a nested node's source (`attrdefs`).
    pub source_tag: String,
    /// Tag carrying an element's value (`attrv`).
    pub value_tag: String,
}

impl Default for DynamicConvention {
    fn default() -> Self {
        DynamicConvention {
            head_wrapper: Some("enttyp".into()),
            head_name_tag: "enttypl".into(),
            head_source_tag: "enttypds".into(),
            node_tag: "attr".into(),
            name_tag: "attrlabl".into(),
            source_tag: "attrdefs".into(),
            value_tag: "attrv".into(),
        }
    }
}

/// Shredding options.
#[derive(Debug, Clone, Default)]
pub struct ShredOptions {
    /// Error on dynamic elements whose value fails type validation
    /// (otherwise the raw string is stored and the numeric column left
    /// NULL).
    pub strict_types: bool,
    /// Error on unknown elements instead of keeping them CLOB-only.
    pub strict_unknown: bool,
}

/// One CLOB produced by shredding.
#[derive(Debug, Clone)]
pub struct ClobRow {
    /// Owning top-level attribute definition.
    pub attr_id: AttrId,
    /// Global order of the anchor node.
    pub order: OrderId,
    /// Same-sibling sequence among CLOBs at this order.
    pub clob_seq: i64,
    /// Serialized subtree.
    pub xml: String,
}

/// One attribute-instance row.
#[derive(Debug, Clone)]
pub struct AttrRow {
    /// Attribute definition.
    pub attr_id: AttrId,
    /// Same-sibling sequence among instances of this definition.
    pub seq: i64,
    /// CLOB sequence (top-level instances only).
    pub clob_seq: Option<i64>,
}

/// One element-instance row.
#[derive(Debug, Clone)]
pub struct ElemRow {
    /// Owning attribute definition.
    pub attr_id: AttrId,
    /// Owning attribute instance sequence.
    pub attr_seq: i64,
    /// Element definition.
    pub elem_id: ElemId,
    /// Local order within the attribute instance.
    pub elem_seq: i64,
    /// Raw string value.
    pub value: String,
    /// Numeric interpretation, when the value parses.
    pub num: Option<f64>,
}

/// One instance-level inverted-list row.
#[derive(Debug, Clone)]
pub struct AncRow {
    /// Sub-attribute instance (definition, sequence).
    pub attr_id: AttrId,
    /// Sequence of the sub-attribute instance.
    pub seq: i64,
    /// Ancestor attribute definition.
    pub anc_attr_id: AttrId,
    /// Ancestor instance sequence.
    pub anc_seq: i64,
    /// Levels between them (direct parent = 1).
    pub distance: i64,
}

/// Everything shredding one document produces (not yet inserted — the
/// catalog applies a `ShreddedDoc` under its table locks, which is what
/// makes parallel ingest effective: parse + shred runs outside locks).
#[derive(Debug, Default, Clone)]
pub struct ShreddedDoc {
    /// CLOBs for response building.
    pub clobs: Vec<ClobRow>,
    /// Attribute instances.
    pub attrs: Vec<AttrRow>,
    /// Element instances.
    pub elems: Vec<ElemRow>,
    /// Instance-level sub-attribute inverted list.
    pub ancestors: Vec<AncRow>,
    /// Paths stored CLOB-only because no definition matched.
    pub unmatched: Vec<String>,
    /// Dynamic specs inferred from unmatched subtrees (for optional
    /// auto-registration by the catalog).
    pub inferred: Vec<(SchemaNodeId, DynamicAttrSpec)>,
}

/// The shredder: partition + ordering + dynamic naming convention.
pub struct Shredder<'a> {
    partition: &'a Partition,
    ordering: &'a GlobalOrdering,
    convention: &'a DynamicConvention,
    options: ShredOptions,
}

struct ShredState<'d> {
    doc: &'d Document,
    out: ShreddedDoc,
    /// Per-definition instance counters (same-sibling sequence).
    seq: HashMap<AttrId, i64>,
    /// Per-order CLOB counters (same-sibling CLOB sequence).
    clob_seq: HashMap<OrderId, i64>,
}

impl<'a> Shredder<'a> {
    /// Create a shredder.
    pub fn new(
        partition: &'a Partition,
        ordering: &'a GlobalOrdering,
        convention: &'a DynamicConvention,
        options: ShredOptions,
    ) -> Shredder<'a> {
        Shredder { partition, ordering, convention, options }
    }

    /// Shred one parsed document against the registered definitions.
    pub fn shred(&self, doc: &Document, defs: &DefsRegistry) -> Result<ShreddedDoc> {
        let schema = self.partition.schema();
        let root_node = doc.root();
        let root_name = doc.node(root_node).name().unwrap_or("");
        if root_name != schema.node(schema.root()).name {
            return Err(CatalogError::UnknownElement { path: format!("/{root_name}") });
        }
        let mut state = ShredState {
            doc,
            out: ShreddedDoc::default(),
            seq: HashMap::new(),
            clob_seq: HashMap::new(),
        };
        self.walk_wrapper(&mut state, defs, root_node, schema.root())?;
        Ok(state.out)
    }

    /// Shred a single attribute-instance fragment (the paper's "as
    /// metadata attributes were inserted later", §5): `snode` is the
    /// attribute root the fragment instantiates, and the seed maps carry
    /// the object's current same-sibling counters so new instances
    /// continue the sequence — no existing row is touched, which is the
    /// E7 contrast with document-level ordering.
    pub fn shred_fragment(
        &self,
        doc: &Document,
        defs: &DefsRegistry,
        snode: SchemaNodeId,
        seq_seed: HashMap<AttrId, i64>,
        clob_seed: HashMap<OrderId, i64>,
    ) -> Result<ShreddedDoc> {
        let mut state =
            ShredState { doc, out: ShreddedDoc::default(), seq: seq_seed, clob_seq: clob_seed };
        match self.partition.role(snode) {
            NodeRole::AttributeRoot { dynamic: true } => {
                self.shred_dynamic(&mut state, defs, doc.root(), snode)?;
            }
            NodeRole::AttributeRoot { dynamic: false } => {
                self.shred_structural(&mut state, defs, doc.root(), snode)?;
            }
            _ => {
                return Err(CatalogError::BadQuery(format!(
                    "{} is not a metadata attribute root",
                    self.partition.schema().node(snode).name
                )));
            }
        }
        Ok(state.out)
    }

    /// Walk a wrapper instance, dispatching children to wrappers or
    /// attribute roots.
    fn walk_wrapper(
        &self,
        state: &mut ShredState<'_>,
        defs: &DefsRegistry,
        dnode: NodeId,
        snode: SchemaNodeId,
    ) -> Result<()> {
        let schema = self.partition.schema();
        let children: Vec<NodeId> = state.doc.child_elements(dnode).collect();
        for child in children {
            let tag = state.doc.node(child).name().unwrap_or("");
            let Some(schild) = schema.child_named(snode, tag) else {
                if self.options.strict_unknown {
                    return Err(CatalogError::UnknownElement { path: state.doc.path_of(child) });
                }
                state.out.unmatched.push(state.doc.path_of(child));
                continue;
            };
            match self.partition.role(schild) {
                NodeRole::Wrapper => self.walk_wrapper(state, defs, child, schild)?,
                NodeRole::AttributeRoot { dynamic } => {
                    if dynamic {
                        self.shred_dynamic(state, defs, child, schild)?;
                    } else {
                        self.shred_structural(state, defs, child, schild)?;
                    }
                }
                NodeRole::SubAttribute | NodeRole::Element => {
                    // Unreachable for valid partitions: sub-attributes and
                    // elements are only reachable through attribute roots.
                    return Err(CatalogError::UnknownElement { path: state.doc.path_of(child) });
                }
            }
        }
        Ok(())
    }

    fn next_seq(state: &mut ShredState<'_>, attr: AttrId) -> i64 {
        let c = state.seq.entry(attr).or_insert(0);
        *c += 1;
        *c
    }

    fn next_clob_seq(state: &mut ShredState<'_>, order: OrderId) -> i64 {
        let c = state.clob_seq.entry(order).or_insert(0);
        *c += 1;
        *c
    }

    fn emit_clob(
        &self,
        state: &mut ShredState<'_>,
        attr_id: AttrId,
        order: OrderId,
        dnode: NodeId,
    ) -> i64 {
        let clob_seq = Self::next_clob_seq(state, order);
        let mut xml = String::with_capacity(256);
        writer::write_subtree(state.doc, dnode, &mut xml);
        state.out.clobs.push(ClobRow { attr_id, order, clob_seq, xml });
        clob_seq
    }

    /// Shred a structural attribute instance: CLOB + elements +
    /// (structurally defined) sub-attributes.
    fn shred_structural(
        &self,
        state: &mut ShredState<'_>,
        defs: &DefsRegistry,
        dnode: NodeId,
        snode: SchemaNodeId,
    ) -> Result<()> {
        let attr_id = defs.attr_for_node(snode).ok_or_else(|| {
            CatalogError::Definition(format!(
                "no definition for structural attribute {}",
                self.partition.schema().node(snode).name
            ))
        })?;
        let order = self.ordering.order_of(snode).expect("attribute roots are ordered");
        let clob_seq = self.emit_clob(state, attr_id, order, dnode);
        let seq = Self::next_seq(state, attr_id);
        state.out.attrs.push(AttrRow { attr_id, seq, clob_seq: Some(clob_seq) });

        // Leaf attribute: the node is its own (single) element.
        if self.partition.schema().node(snode).is_leaf() {
            if let Some(elem_id) = defs.elem_for_node(snode) {
                self.emit_elem(
                    state,
                    defs,
                    attr_id,
                    seq,
                    elem_id,
                    1,
                    state.doc.direct_text(dnode),
                )?;
            }
            return Ok(());
        }
        let mut chain = vec![(attr_id, seq)];
        self.shred_structural_children(state, defs, dnode, snode, &mut chain)
    }

    fn shred_structural_children(
        &self,
        state: &mut ShredState<'_>,
        defs: &DefsRegistry,
        dnode: NodeId,
        snode: SchemaNodeId,
        chain: &mut Vec<(AttrId, i64)>,
    ) -> Result<()> {
        let schema = self.partition.schema();
        let (owner_attr, owner_seq) = *chain.last().expect("chain starts at the attribute root");
        let mut elem_seq = 0i64;
        let children: Vec<NodeId> = state.doc.child_elements(dnode).collect();
        for child in children {
            let tag = state.doc.node(child).name().unwrap_or("");
            let Some(schild) = schema.child_named(snode, tag) else {
                if self.options.strict_unknown {
                    return Err(CatalogError::UnknownElement { path: state.doc.path_of(child) });
                }
                state.out.unmatched.push(state.doc.path_of(child));
                continue;
            };
            if schema.node(schild).is_leaf() {
                let Some(elem_id) = defs.elem_for_node(schild) else {
                    state.out.unmatched.push(state.doc.path_of(child));
                    continue;
                };
                elem_seq += 1;
                self.emit_elem(
                    state,
                    defs,
                    owner_attr,
                    owner_seq,
                    elem_id,
                    elem_seq,
                    state.doc.direct_text(child),
                )?;
            } else {
                // Structural sub-attribute.
                let Some(sub_id) = defs.attr_for_node(schild) else {
                    state.out.unmatched.push(state.doc.path_of(child));
                    continue;
                };
                let sub_seq = Self::next_seq(state, sub_id);
                state.out.attrs.push(AttrRow { attr_id: sub_id, seq: sub_seq, clob_seq: None });
                for (i, &(anc_attr, anc_seq)) in chain.iter().rev().enumerate() {
                    state.out.ancestors.push(AncRow {
                        attr_id: sub_id,
                        seq: sub_seq,
                        anc_attr_id: anc_attr,
                        anc_seq,
                        distance: (i + 1) as i64,
                    });
                }
                chain.push((sub_id, sub_seq));
                self.shred_structural_children(state, defs, child, schild, chain)?;
                chain.pop();
            }
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn emit_elem(
        &self,
        state: &mut ShredState<'_>,
        defs: &DefsRegistry,
        attr_id: AttrId,
        attr_seq: i64,
        elem_id: ElemId,
        elem_seq: i64,
        value: String,
    ) -> Result<()> {
        let dtype = defs.elem(elem_id).map(|e| e.dtype).unwrap_or(ValueType::Str);
        let num = value.trim().parse::<f64>().ok();
        if self.options.strict_types {
            let ok = match dtype {
                ValueType::Str => true,
                ValueType::Int => value.trim().parse::<i64>().is_ok(),
                ValueType::Float => num.is_some(),
                ValueType::Bool => {
                    matches!(value.trim(), "true" | "false" | "0" | "1" | "TRUE" | "FALSE")
                }
            };
            if !ok {
                let ename = defs.elem(elem_id).map(|e| e.name.clone()).unwrap_or_default();
                return Err(CatalogError::Validation(format!(
                    "element {ename} expects {} but got {value:?}",
                    dtype.name()
                )));
            }
        }
        state
            .out
            .elems
            .push(ElemRow { attr_id, attr_seq, elem_id, elem_seq, value, num });
        Ok(())
    }

    /// Shred a dynamic attribute instance (e.g. one LEAD `detailed`).
    fn shred_dynamic(
        &self,
        state: &mut ShredState<'_>,
        defs: &DefsRegistry,
        dnode: NodeId,
        snode: SchemaNodeId,
    ) -> Result<()> {
        let cv = self.convention;
        let order = self.ordering.order_of(snode).expect("attribute roots are ordered");

        // Resolve the attribute's own (name, source) from values.
        let (name, source) = match &cv.head_wrapper {
            Some(head) => {
                let Some(h) = state.doc.child_named(dnode, head) else {
                    state.out.unmatched.push(state.doc.path_of(dnode));
                    let anchor_def = defs.attr_for_node(snode).ok_or_else(|| {
                        CatalogError::Definition("dynamic anchor has no definition".into())
                    })?;
                    self.emit_clob(state, anchor_def, order, dnode);
                    return Ok(());
                };
                (
                    read_child_text(state.doc, h, &cv.head_name_tag),
                    read_child_text(state.doc, h, &cv.head_source_tag),
                )
            }
            None => (
                read_child_text(state.doc, dnode, &cv.head_name_tag),
                read_child_text(state.doc, dnode, &cv.head_source_tag),
            ),
        };
        let (Some(name), Some(source)) = (name, source) else {
            if self.options.strict_unknown {
                return Err(CatalogError::Validation(format!(
                    "dynamic attribute at {} lacks name/source",
                    state.doc.path_of(dnode)
                )));
            }
            state.out.unmatched.push(state.doc.path_of(dnode));
            let anchor_def = defs.attr_for_node(snode).ok_or_else(|| {
                CatalogError::Definition("dynamic anchor has no definition".into())
            })?;
            self.emit_clob(state, anchor_def, order, dnode);
            return Ok(());
        };

        let Some(attr_id) = defs.resolve_dynamic_top(snode, &name, &source) else {
            // Validation miss: keep the CLOB (anchored at the dynamic
            // anchor definition so the document reconstructs), skip
            // query-side shredding, and report an inferred spec.
            state
                .out
                .unmatched
                .push(format!("{} ({name}, {source})", state.doc.path_of(dnode)));
            state
                .out
                .inferred
                .push((snode, self.infer_spec(state.doc, dnode, &name, &source)));
            if self.options.strict_unknown {
                return Err(CatalogError::Validation(format!(
                    "dynamic attribute ({name}, {source}) is not registered"
                )));
            }
            let anchor_def = defs.attr_for_node(snode).ok_or_else(|| {
                CatalogError::Definition("dynamic anchor has no definition".into())
            })?;
            self.emit_clob(state, anchor_def, order, dnode);
            return Ok(());
        };

        let clob_seq = self.emit_clob(state, attr_id, order, dnode);
        let seq = Self::next_seq(state, attr_id);
        state.out.attrs.push(AttrRow { attr_id, seq, clob_seq: Some(clob_seq) });
        let mut chain = vec![(attr_id, seq)];
        self.shred_dynamic_nodes(state, defs, dnode, &source, &mut chain)
    }

    /// Walk `node_tag` children of a dynamic node: values become
    /// elements, nested `node_tag` children become sub-attributes.
    fn shred_dynamic_nodes(
        &self,
        state: &mut ShredState<'_>,
        defs: &DefsRegistry,
        dnode: NodeId,
        default_source: &str,
        chain: &mut Vec<(AttrId, i64)>,
    ) -> Result<()> {
        let cv = self.convention;
        let (owner_attr, owner_seq) = *chain.last().expect("chain starts at the dynamic root");
        let mut elem_seq = 0i64;
        let children: Vec<NodeId> = state.doc.children_named(dnode, &cv.node_tag).collect();
        for child in children {
            let name = read_child_text(state.doc, child, &cv.name_tag);
            let source = read_child_text(state.doc, child, &cv.source_tag)
                .unwrap_or_else(|| default_source.to_string());
            let Some(name) = name else {
                if self.options.strict_unknown {
                    return Err(CatalogError::Validation(format!(
                        "dynamic node at {} lacks a {} child",
                        state.doc.path_of(child),
                        cv.name_tag
                    )));
                }
                state.out.unmatched.push(state.doc.path_of(child));
                continue;
            };
            let has_value = state.doc.child_named(child, &cv.value_tag).is_some();
            let has_subs = state.doc.children_named(child, &cv.node_tag).next().is_some();
            if has_subs {
                // Sub-attribute (paper: an attr with attr children).
                let Some(sub_id) = defs.resolve_dynamic_sub(owner_attr, &name, &source) else {
                    if self.options.strict_unknown {
                        return Err(CatalogError::Validation(format!(
                            "sub-attribute ({name}, {source}) is not registered"
                        )));
                    }
                    state.out.unmatched.push(state.doc.path_of(child));
                    continue;
                };
                let sub_seq = Self::next_seq(state, sub_id);
                state.out.attrs.push(AttrRow { attr_id: sub_id, seq: sub_seq, clob_seq: None });
                for (i, &(anc_attr, anc_seq)) in chain.iter().rev().enumerate() {
                    state.out.ancestors.push(AncRow {
                        attr_id: sub_id,
                        seq: sub_seq,
                        anc_attr_id: anc_attr,
                        anc_seq,
                        distance: (i + 1) as i64,
                    });
                }
                // A sub-attribute may also carry its own value element.
                if has_value {
                    if let Some(elem_id) = defs.resolve_elem(sub_id, &name) {
                        let v = state
                            .doc
                            .child_named(child, &cv.value_tag)
                            .map(|n| state.doc.direct_text(n))
                            .unwrap_or_default();
                        self.emit_elem(state, defs, sub_id, sub_seq, elem_id, 1, v)?;
                    }
                }
                chain.push((sub_id, sub_seq));
                self.shred_dynamic_nodes(state, defs, child, &source, chain)?;
                chain.pop();
            } else if has_value {
                // Element (paper: an attr with an attrv child).
                let Some(elem_id) = defs.resolve_elem(owner_attr, &name) else {
                    if self.options.strict_unknown {
                        return Err(CatalogError::Validation(format!(
                            "element ({name}, {source}) is not registered on attribute #{owner_attr}"
                        )));
                    }
                    state.out.unmatched.push(state.doc.path_of(child));
                    continue;
                };
                elem_seq += 1;
                let v = state
                    .doc
                    .child_named(child, &cv.value_tag)
                    .map(|n| state.doc.direct_text(n))
                    .unwrap_or_default();
                self.emit_elem(state, defs, owner_attr, owner_seq, elem_id, elem_seq, v)?;
            } else {
                state.out.unmatched.push(state.doc.path_of(child));
            }
        }
        Ok(())
    }

    /// Infer a registration spec from an unmatched dynamic subtree.
    fn infer_spec(
        &self,
        doc: &Document,
        dnode: NodeId,
        name: &str,
        source: &str,
    ) -> DynamicAttrSpec {
        let cv = self.convention;
        fn walk(
            doc: &Document,
            node: NodeId,
            cv: &DynamicConvention,
            spec: &mut DynamicAttrSpec,
            source: &str,
        ) {
            for child in doc.children_named(node, &cv.node_tag) {
                let Some(name) = read_child_text(doc, child, &cv.name_tag) else {
                    continue;
                };
                let src = read_child_text(doc, child, &cv.source_tag)
                    .unwrap_or_else(|| source.to_string());
                let has_subs = doc.children_named(child, &cv.node_tag).next().is_some();
                if has_subs {
                    let mut sub = DynamicAttrSpec::new(name, src.clone());
                    walk(doc, child, cv, &mut sub, &src);
                    spec.subs.push(sub);
                } else if let Some(vn) = doc.child_named(child, &cv.value_tag) {
                    let v = doc.direct_text(vn);
                    let dtype = if v.trim().parse::<f64>().is_ok() {
                        ValueType::Float
                    } else {
                        ValueType::Str
                    };
                    spec.elements.push((name, dtype));
                }
            }
        }
        let mut spec = DynamicAttrSpec::new(name, source);
        walk(doc, dnode, cv, &mut spec, source);
        spec
    }
}

fn read_child_text(doc: &Document, node: NodeId, tag: &str) -> Option<String> {
    doc.child_named(node, tag).map(|n| doc.direct_text(n)).filter(|s| !s.is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::defs::DefLevel;
    use crate::partition::PartitionSpec;
    use std::sync::Arc;
    use xmlkit::schema::Schema;

    fn setup() -> (Arc<Schema>, Partition, GlobalOrdering, DefsRegistry) {
        let s = Arc::new(
            Schema::parse_dsl(
                "root {
                    keywords? { theme* { themekt themekey+ } }
                    eainfo? {
                        detailed* {
                            enttyp { enttypl enttypds }
                            attr* { attrlabl attrdefs attrv? ^attr }
                        }
                    }
                 }",
            )
            .unwrap(),
        );
        let spec = PartitionSpec::default()
            .attr("/root/keywords/theme")
            .dynamic_attr("/root/eainfo/detailed");
        let p = Partition::new(s.clone(), &spec).unwrap();
        let o = GlobalOrdering::new(&p);
        let mut reg = DefsRegistry::from_partition(&p, &o);
        let anchor = s.resolve_path("/root/eainfo/detailed").unwrap();
        reg.register_dynamic(
            &p,
            &o,
            anchor,
            &DynamicAttrSpec::new("grid", "ARPS")
                .element("dx", ValueType::Float)
                .element("dz", ValueType::Float)
                .sub(
                    DynamicAttrSpec::new("grid-stretching", "ARPS")
                        .element("dzmin", ValueType::Float)
                        .element("reference-height", ValueType::Float),
                ),
            DefLevel::Admin,
        )
        .unwrap();
        (s, p, o, reg)
    }

    const DOC: &str = "<root>\
        <keywords>\
          <theme><themekt>CF</themekt><themekey>rain</themekey><themekey>snow</themekey></theme>\
          <theme><themekt>CF</themekt><themekey>wind</themekey></theme>\
        </keywords>\
        <eainfo>\
          <detailed>\
            <enttyp><enttypl>grid</enttypl><enttypds>ARPS</enttypds></enttyp>\
            <attr><attrlabl>grid-stretching</attrlabl><attrdefs>ARPS</attrdefs>\
              <attr><attrlabl>dzmin</attrlabl><attrdefs>ARPS</attrdefs><attrv>100.000</attrv></attr>\
              <attr><attrlabl>reference-height</attrlabl><attrdefs>ARPS</attrdefs><attrv>0</attrv></attr>\
            </attr>\
            <attr><attrlabl>dx</attrlabl><attrdefs>ARPS</attrdefs><attrv>1000.000</attrv></attr>\
            <attr><attrlabl>dz</attrlabl><attrdefs>ARPS</attrdefs><attrv>500.000</attrv></attr>\
          </detailed>\
        </eainfo>\
      </root>";

    fn shred_doc() -> (ShreddedDoc, DefsRegistry, GlobalOrdering, Arc<Schema>) {
        let (s, p, o, reg) = setup();
        let cv = DynamicConvention::default();
        let shredder = Shredder::new(&p, &o, &cv, ShredOptions::default());
        let doc = Document::parse(DOC).unwrap();
        let out = shredder.shred(&doc, &reg).unwrap();
        (out, reg, o, s)
    }

    #[test]
    fn theme_clobs_with_sibling_sequence() {
        let (out, reg, o, s) = shred_doc();
        let theme_node = s.resolve_path("/root/keywords/theme").unwrap();
        let theme_id = reg.attr_for_node(theme_node).unwrap();
        let theme_order = o.order_of(theme_node).unwrap();
        let theme_clobs: Vec<_> = out.clobs.iter().filter(|c| c.attr_id == theme_id).collect();
        assert_eq!(theme_clobs.len(), 2);
        assert_eq!(theme_clobs[0].clob_seq, 1);
        assert_eq!(theme_clobs[1].clob_seq, 2);
        assert!(theme_clobs.iter().all(|c| c.order == theme_order));
        assert!(theme_clobs[0].xml.starts_with("<theme>"));
        assert!(theme_clobs[0].xml.contains("rain"));
    }

    #[test]
    fn theme_elements_shredded() {
        let (out, reg, _, s) = shred_doc();
        let theme_id = reg.attr_for_node(s.resolve_path("/root/keywords/theme").unwrap()).unwrap();
        let theme_elems: Vec<_> = out.elems.iter().filter(|e| e.attr_id == theme_id).collect();
        // theme1: kt + 2 keys; theme2: kt + 1 key
        assert_eq!(theme_elems.len(), 5);
        let t1: Vec<_> = theme_elems.iter().filter(|e| e.attr_seq == 1).collect();
        assert_eq!(t1.len(), 3);
        assert_eq!(t1[0].elem_seq, 1);
        assert_eq!(t1[1].value, "rain");
        assert_eq!(t1[2].value, "snow");
    }

    #[test]
    fn dynamic_resolved_by_name_source() {
        let (out, reg, _, _) = shred_doc();
        let grid = reg.find_attr("grid", Some("ARPS"), None).unwrap();
        let grid_rows: Vec<_> = out.attrs.iter().filter(|a| a.attr_id == grid.id).collect();
        assert_eq!(grid_rows.len(), 1);
        assert_eq!(grid_rows[0].seq, 1);
        assert!(grid_rows[0].clob_seq.is_some());
        // dx and dz elements on the grid instance
        let dx = reg.resolve_elem(grid.id, "dx").unwrap();
        let dx_row = out.elems.iter().find(|e| e.elem_id == dx).unwrap();
        assert_eq!(dx_row.num, Some(1000.0));
        assert_eq!(dx_row.value, "1000.000");
    }

    #[test]
    fn sub_attribute_inverted_list() {
        let (out, reg, _, _) = shred_doc();
        let grid = reg.find_attr("grid", Some("ARPS"), None).unwrap();
        let st = reg.resolve_dynamic_sub(grid.id, "grid-stretching", "ARPS").unwrap();
        let anc: Vec<_> = out.ancestors.iter().filter(|a| a.attr_id == st).collect();
        assert_eq!(anc.len(), 1);
        assert_eq!(anc[0].anc_attr_id, grid.id);
        assert_eq!(anc[0].distance, 1);
        // dzmin element belongs to the sub-attribute instance
        let dzmin = reg.resolve_elem(st, "dzmin").unwrap();
        let row = out.elems.iter().find(|e| e.elem_id == dzmin).unwrap();
        assert_eq!(row.attr_id, st);
        assert_eq!(row.num, Some(100.0));
    }

    #[test]
    fn recursion_disappears_no_recursive_rows() {
        // Deeper nesting: 3 levels; every level flattens into the
        // inverted list with increasing distance.
        let (s, p, o, mut reg) = setup();
        let anchor = s.resolve_path("/root/eainfo/detailed").unwrap();
        reg.register_dynamic(
            &p,
            &o,
            anchor,
            &DynamicAttrSpec::new("deep", "T").sub(
                DynamicAttrSpec::new("l1", "T")
                    .sub(DynamicAttrSpec::new("l2", "T").element("v", ValueType::Float)),
            ),
            DefLevel::Admin,
        )
        .unwrap();
        let doc = Document::parse(
            "<root><eainfo><detailed>\
               <enttyp><enttypl>deep</enttypl><enttypds>T</enttypds></enttyp>\
               <attr><attrlabl>l1</attrlabl><attrdefs>T</attrdefs>\
                 <attr><attrlabl>l2</attrlabl><attrdefs>T</attrdefs>\
                   <attr><attrlabl>v</attrlabl><attrdefs>T</attrdefs><attrv>7</attrv></attr>\
                 </attr>\
               </attr>\
             </detailed></eainfo></root>",
        )
        .unwrap();
        let cv = DynamicConvention::default();
        let out = Shredder::new(&p, &o, &cv, ShredOptions::default()).shred(&doc, &reg).unwrap();
        let deep = reg.find_attr("deep", Some("T"), None).unwrap();
        let l1 = reg.resolve_dynamic_sub(deep.id, "l1", "T").unwrap();
        let l2 = reg.resolve_dynamic_sub(l1, "l2", "T").unwrap();
        let l2_anc: Vec<_> = out.ancestors.iter().filter(|a| a.attr_id == l2).collect();
        assert_eq!(l2_anc.len(), 2);
        assert!(l2_anc.iter().any(|a| a.anc_attr_id == l1 && a.distance == 1));
        assert!(l2_anc.iter().any(|a| a.anc_attr_id == deep.id && a.distance == 2));
    }

    #[test]
    fn unregistered_dynamic_is_clob_only() {
        let (s, p, o, reg) = setup();
        let doc = Document::parse(
            "<root><eainfo><detailed>\
               <enttyp><enttypl>mystery</enttypl><enttypds>NOPE</enttypds></enttyp>\
               <attr><attrlabl>x</attrlabl><attrdefs>NOPE</attrdefs><attrv>1</attrv></attr>\
             </detailed></eainfo></root>",
        )
        .unwrap();
        let cv = DynamicConvention::default();
        let out = Shredder::new(&p, &o, &cv, ShredOptions::default()).shred(&doc, &reg).unwrap();
        // CLOB kept (anchored at the detailed definition), nothing shredded.
        assert_eq!(out.clobs.len(), 1);
        assert!(out.attrs.is_empty());
        assert!(out.elems.is_empty());
        assert_eq!(out.unmatched.len(), 1);
        // Inferred spec available for auto-registration.
        assert_eq!(out.inferred.len(), 1);
        let (anchor, spec) = &out.inferred[0];
        assert_eq!(*anchor, s.resolve_path("/root/eainfo/detailed").unwrap());
        assert_eq!(spec.name, "mystery");
        assert_eq!(spec.elements.len(), 1);
        // Strict mode errors instead.
        let err =
            Shredder::new(&p, &o, &cv, ShredOptions { strict_unknown: true, ..Default::default() })
                .shred(&doc, &reg)
                .unwrap_err();
        assert!(matches!(err, CatalogError::Validation(_)));
    }

    #[test]
    fn type_validation() {
        let (s, p, o, mut reg) = setup();
        let anchor = s.resolve_path("/root/eainfo/detailed").unwrap();
        reg.register_dynamic(
            &p,
            &o,
            anchor,
            &DynamicAttrSpec::new("typed", "T").element("n", ValueType::Int),
            DefLevel::Admin,
        )
        .unwrap();
        let doc = Document::parse(
            "<root><eainfo><detailed>\
               <enttyp><enttypl>typed</enttypl><enttypds>T</enttypds></enttyp>\
               <attr><attrlabl>n</attrlabl><attrdefs>T</attrdefs><attrv>not-a-number</attrv></attr>\
             </detailed></eainfo></root>",
        )
        .unwrap();
        let cv = DynamicConvention::default();
        // Lenient: stored with NULL numeric.
        let out = Shredder::new(&p, &o, &cv, ShredOptions::default()).shred(&doc, &reg).unwrap();
        assert_eq!(out.elems.len(), 1);
        assert_eq!(out.elems[0].num, None);
        // Strict: rejected.
        let err =
            Shredder::new(&p, &o, &cv, ShredOptions { strict_types: true, ..Default::default() })
                .shred(&doc, &reg)
                .unwrap_err();
        assert!(matches!(err, CatalogError::Validation(_)));
    }

    #[test]
    fn wrong_root_rejected() {
        let (_, p, o, reg) = setup();
        let cv = DynamicConvention::default();
        let doc = Document::parse("<other/>").unwrap();
        let err = Shredder::new(&p, &o, &cv, ShredOptions::default())
            .shred(&doc, &reg)
            .unwrap_err();
        assert!(matches!(err, CatalogError::UnknownElement { .. }));
    }

    #[test]
    fn unknown_wrapper_child_lenient_vs_strict() {
        let (_, p, o, reg) = setup();
        let cv = DynamicConvention::default();
        let doc = Document::parse("<root><bogus>1</bogus></root>").unwrap();
        let out = Shredder::new(&p, &o, &cv, ShredOptions::default()).shred(&doc, &reg).unwrap();
        assert_eq!(out.unmatched, vec!["/root/bogus"]);
        let err =
            Shredder::new(&p, &o, &cv, ShredOptions { strict_unknown: true, ..Default::default() })
                .shred(&doc, &reg)
                .unwrap_err();
        assert!(matches!(err, CatalogError::UnknownElement { .. }));
    }

    #[test]
    fn multiple_dynamic_instances_clob_sequence() {
        let (s, p, o, mut reg) = setup();
        let anchor = s.resolve_path("/root/eainfo/detailed").unwrap();
        reg.register_dynamic(
            &p,
            &o,
            anchor,
            &DynamicAttrSpec::new("radar", "NEXRAD"),
            DefLevel::Admin,
        )
        .unwrap();
        let doc = Document::parse(
            "<root><eainfo>\
               <detailed><enttyp><enttypl>grid</enttypl><enttypds>ARPS</enttypds></enttyp></detailed>\
               <detailed><enttyp><enttypl>radar</enttypl><enttypds>NEXRAD</enttypds></enttyp></detailed>\
             </eainfo></root>",
        )
        .unwrap();
        let cv = DynamicConvention::default();
        let out = Shredder::new(&p, &o, &cv, ShredOptions::default()).shred(&doc, &reg).unwrap();
        // Different defs, but CLOB sequence is same-sibling order at the
        // shared anchor position: 1 then 2.
        assert_eq!(out.clobs.len(), 2);
        assert_eq!(out.clobs[0].clob_seq, 1);
        assert_eq!(out.clobs[1].clob_seq, 2);
        assert_ne!(out.clobs[0].attr_id, out.clobs[1].attr_id);
        // Each def's instance sequence restarts at 1.
        assert!(out.attrs.iter().all(|a| a.seq == 1));
    }
}
