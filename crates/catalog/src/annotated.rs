//! Annotated-schema front end (§7).
//!
//! The paper's conclusion sketches "a framework for metadata catalogs
//! that would be based on an annotated schema to indicate which schema
//! elements are structural or dynamic metadata attributes". This module
//! implements that framework: the schema DSL plus two annotations —
//!
//! - `name!`  — this element is a **structural** metadata attribute;
//! - `name!!` — this element is a **dynamic** metadata attribute root.
//!
//! ```text
//! LEADresource {
//!   resourceID!
//!   data {
//!     idinfo { status! { progress update } }
//!     eainfo { detailed!!* { ... } }
//!   }
//! }
//! ```
//!
//! The annotations are stripped, the remaining text parsed by
//! `xmlkit`'s schema DSL, and the five partition rules enforced as
//! usual — one source of truth for both the schema and its partition.

use crate::error::{CatalogError, Result};
use crate::partition::{Partition, PartitionSpec};
use std::sync::Arc;
use xmlkit::schema::Schema;

/// Parse an annotated schema into a validated [`Partition`].
pub fn parse_annotated(src: &str) -> Result<Partition> {
    let (clean, spec) = strip_annotations(src)?;
    let schema = Arc::new(Schema::parse_dsl(&clean)?);
    Partition::new(schema, &spec)
}

/// Strip `!`/`!!` annotations, returning the clean DSL and the
/// partition spec of annotated paths.
fn strip_annotations(src: &str) -> Result<(String, PartitionSpec)> {
    let mut clean = String::with_capacity(src.len());
    let mut spec = PartitionSpec::default();
    // Path stack of element names (the braces structure of the DSL).
    let mut stack: Vec<String> = Vec::new();
    let mut chars = src.char_indices().peekable();
    // The most recently read name, not yet pushed (pushed on '{').
    let mut pending: Option<String> = None;

    while let Some((i, c)) = chars.next() {
        match c {
            '#' => {
                // Comment through end of line (kept for the DSL parser).
                clean.push(c);
                for (_, c2) in chars.by_ref() {
                    clean.push(c2);
                    if c2 == '\n' {
                        break;
                    }
                }
            }
            '{' => {
                let name = pending.take().ok_or_else(|| {
                    CatalogError::InvalidPartition(format!("'{{' without element name at byte {i}"))
                })?;
                stack.push(name);
                clean.push(c);
            }
            '}' => {
                pending = None;
                if stack.pop().is_none() {
                    return Err(CatalogError::InvalidPartition(format!(
                        "unbalanced '}}' at byte {i}"
                    )));
                }
                clean.push(c);
            }
            '!' => {
                // Annotation on the pending name; '!!' = dynamic.
                let dynamic = matches!(chars.peek(), Some((_, '!')));
                if dynamic {
                    chars.next();
                }
                let name = pending.clone().ok_or_else(|| {
                    CatalogError::InvalidPartition(format!("'!' without element name at byte {i}"))
                })?;
                let mut path = String::new();
                for part in stack.iter().chain(std::iter::once(&name)) {
                    path.push('/');
                    path.push_str(part);
                }
                if dynamic {
                    spec.dynamic.push(path);
                } else {
                    spec.structural.push(path);
                }
                // Annotation itself is not emitted into the clean DSL.
            }
            c if c.is_alphanumeric() || c == '_' || c == '-' || c == '.' => {
                // Read the whole name.
                let mut name = String::new();
                name.push(c);
                while let Some(&(_, c2)) = chars.peek() {
                    if c2.is_alphanumeric() || c2 == '_' || c2 == '-' || c2 == '.' {
                        name.push(c2);
                        chars.next();
                    } else {
                        break;
                    }
                }
                // Type suffixes (":float") belong to the same token but
                // are not part of the element name.
                clean.push_str(&name);
                if matches!(chars.peek(), Some((_, ':'))) {
                    clean.push(':');
                    chars.next();
                    while let Some(&(_, c2)) = chars.peek() {
                        if c2.is_ascii_alphabetic() {
                            clean.push(c2);
                            chars.next();
                        } else {
                            break;
                        }
                    }
                }
                pending = Some(name);
            }
            '^' => {
                // Recursion reference: copy the whole token; it is not a
                // new element.
                clean.push(c);
                while let Some(&(_, c2)) = chars.peek() {
                    if c2.is_alphanumeric() || c2 == '_' || c2 == '-' || c2 == '.' {
                        clean.push(c2);
                        chars.next();
                    } else {
                        break;
                    }
                }
                pending = None;
            }
            '?' | '*' | '+' | '@' => {
                clean.push(c);
            }
            c if c.is_whitespace() => {
                clean.push(c);
            }
            other => {
                return Err(CatalogError::InvalidPartition(format!(
                    "unexpected character {other:?} at byte {i}"
                )));
            }
        }
    }
    if !stack.is_empty() {
        return Err(CatalogError::InvalidPartition("unbalanced '{' at end of schema".into()));
    }
    Ok((clean, spec))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lead::lead_partition;
    use crate::ordering::GlobalOrdering;
    use crate::partition::NodeRole;

    /// The Fig-2 LEAD schema with inline annotations — one document
    /// instead of schema + separate spec.
    const LEAD_ANNOTATED: &str = "
LEADresource {
  resourceID!
  data {
    idinfo {
      status! { progress update }
      citation! { origin pubdate title }
      timeperd { timeinfo! { current begdate? enddate? } }
      keywords? {
        theme!*    { themekt themekey+ }
        place!*    { placekt placekey+ }
        stratum!*  { stratkt stratkey+ }
        temporal!* { tempkt tempkey+ }
      }
      useconst!?
      accconst!?
    }
    geospatial {
      spdom {
        dsgpoly!* { polygon }
        bounding! { westbc:float eastbc:float northbc:float southbc:float }
      }
      vertdom! { vmin:float vmax:float }
      eainfo {
        detailed!!* {
          enttyp { enttypl enttypds }
          attr* { attrlabl attrdefs attrv? ^attr }
        }
        overview!* { eaover eadetcit+ }
      }
    }
  }
}
";

    #[test]
    fn annotated_lead_matches_hand_built_partition() {
        let annotated = parse_annotated(LEAD_ANNOTATED).unwrap();
        let manual = lead_partition();
        let sa = annotated.schema();
        let sm = manual.schema();
        assert_eq!(sa.len(), sm.len());
        // Same roles on every node (by path identity).
        for (na, nm) in sa.preorder().into_iter().zip(sm.preorder()) {
            assert_eq!(sa.node(na).name, sm.node(nm).name);
            assert_eq!(annotated.role(na), manual.role(nm), "role differs at {}", sa.node(na).name);
        }
        // Same global ordering (theme = 10, 23 nodes).
        let oa = GlobalOrdering::new(&annotated);
        assert_eq!(oa.len(), 23);
        let theme = sa.resolve_path("/LEADresource/data/idinfo/keywords/theme").unwrap();
        assert_eq!(oa.order_of(theme), Some(10));
    }

    #[test]
    fn dynamic_annotation() {
        let p = parse_annotated(
            "r { leaf! d!!* { enttyp { enttypl enttypds } attr* { attrlabl attrv? ^attr } } }",
        )
        .unwrap();
        let s = p.schema();
        let d = s.resolve_path("/r/d").unwrap();
        assert_eq!(p.role(d), NodeRole::AttributeRoot { dynamic: true });
        let leaf = s.resolve_path("/r/leaf").unwrap();
        assert_eq!(p.role(leaf), NodeRole::AttributeRoot { dynamic: false });
    }

    #[test]
    fn annotation_with_suffixes_in_any_reasonable_position() {
        // `name!*` and `name!?` both parse (annotation before cardinality).
        let p = parse_annotated("r { a!* { x } b!? }").unwrap();
        let s = p.schema();
        assert!(p.is_attr_root(s.resolve_path("/r/a").unwrap()));
        assert!(p.is_attr_root(s.resolve_path("/r/b").unwrap()));
        assert!(s.node(s.resolve_path("/r/a").unwrap()).cardinality.repeating());
    }

    #[test]
    fn rules_still_enforced() {
        // Repeating element not inside any attribute → rule 2 violation.
        let err = parse_annotated("r { w* { leaf! } }").unwrap_err();
        assert!(matches!(err, CatalogError::InvalidPartition(_)));
        // Uncovered leaf → rule 5 violation.
        let err = parse_annotated("r { a! { x } orphan }").unwrap_err();
        assert!(matches!(err, CatalogError::InvalidPartition(_)));
    }

    #[test]
    fn syntax_errors() {
        assert!(parse_annotated("r { ! }").is_err());
        assert!(parse_annotated("r { a! ").is_err());
        assert!(parse_annotated("r } a!").is_err());
        assert!(parse_annotated("r { $ }").is_err());
    }

    #[test]
    fn works_end_to_end_with_catalog() {
        use crate::catalog::{CatalogConfig, MetadataCatalog};
        let p = parse_annotated(LEAD_ANNOTATED).unwrap();
        let cat = MetadataCatalog::new(p, CatalogConfig::default()).unwrap();
        crate::lead::register_arps_defs(&cat).unwrap();
        let id = cat.ingest(crate::lead::FIG3_DOCUMENT).unwrap();
        assert_eq!(cat.query(&crate::lead::fig4_query()).unwrap(), vec![id]);
    }
}
