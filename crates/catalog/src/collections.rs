//! Object collections (myLEAD aggregations).
//!
//! The paper describes the catalog's subjects as "objects (files or
//! aggregations)": a scientist's experiment is a collection holding the
//! files (and sub-collections — ensemble members, nested workflows) it
//! produced. Queries can then be scoped to a collection subtree, which
//! is the myLEAD GUI's "containment viewpoint" (§7).
//!
//! Collections are rows in two extra tables (`collections`,
//! `collection_members`); membership is many-to-many and collections
//! nest, with cycle protection.

use crate::catalog::MetadataCatalog;
use crate::error::{CatalogError, Result};
use crate::query::ObjectQuery;
use minidb::{Column, DataType, Database, Expr, Plan, TableSchema, Value};
use std::collections::HashSet;

/// Identifier of a collection.
pub type CollectionId = i64;

/// Kind tags in `collection_members.kind`.
const KIND_OBJECT: i64 = 0;
const KIND_COLLECTION: i64 = 1;

/// Create the collection tables (idempotent if absent).
pub(crate) fn create_collection_tables(db: &Database) -> Result<()> {
    db.create_table(
        "collections",
        TableSchema::new(vec![
            Column::new("coll_id", DataType::Int),
            Column::new("name", DataType::Text),
            Column::nullable("owner", DataType::Text),
        ]),
    )?;
    db.create_index("collections", "collections_pk", &["coll_id"], true)?;
    db.create_table(
        "collection_members",
        TableSchema::new(vec![
            Column::new("coll_id", DataType::Int),
            Column::new("kind", DataType::Int),
            Column::new("member_id", DataType::Int),
        ]),
    )?;
    db.create_index("collection_members", "members_pk", &["coll_id", "kind", "member_id"], true)?;
    Ok(())
}

impl MetadataCatalog {
    /// Create a collection; returns its id.
    pub fn create_collection(&self, name: &str, owner: Option<&str>) -> Result<CollectionId> {
        let id = self.next_collection_id();
        self.db().insert(
            "collections",
            vec![vec![
                Value::Int(id),
                Value::Str(name.to_string()),
                owner.map(|o| Value::Str(o.into())).unwrap_or(Value::Null),
            ]],
        )?;
        Ok(id)
    }

    fn next_collection_id(&self) -> CollectionId {
        // Max + 1 over the small collections table (created lazily
        // relative to catalog startup, so no counter is persisted).
        let rs = self
            .db()
            .execute(&Plan::Scan { table: "collections".into(), filter: None })
            .map(|rs| rs.rows.iter().filter_map(|r| r[0].as_i64()).max().unwrap_or(0))
            .unwrap_or(0);
        rs + 1
    }

    fn collection_exists(&self, id: CollectionId) -> Result<bool> {
        Ok(!self
            .db()
            .execute(&Plan::Scan {
                table: "collections".into(),
                filter: Some(Expr::col_eq(0, id)),
            })?
            .rows
            .is_empty())
    }

    /// Add an object to a collection.
    pub fn add_object_to_collection(&self, coll: CollectionId, object_id: i64) -> Result<()> {
        if !self.collection_exists(coll)? {
            return Err(CatalogError::NoSuchObject(coll));
        }
        self.db()
            .insert(
                "collection_members",
                vec![vec![Value::Int(coll), Value::Int(KIND_OBJECT), Value::Int(object_id)]],
            )
            .map(|_| ())
            .map_err(Into::into)
    }

    /// Nest `child` under `parent`. Rejects cycles.
    pub fn add_subcollection(&self, parent: CollectionId, child: CollectionId) -> Result<()> {
        if !self.collection_exists(parent)? || !self.collection_exists(child)? {
            return Err(CatalogError::NoSuchObject(parent.min(child)));
        }
        // Cycle check: parent must not be reachable from child.
        let mut seen = HashSet::new();
        let mut stack = vec![child];
        while let Some(c) = stack.pop() {
            if c == parent {
                return Err(CatalogError::Definition(format!(
                    "adding collection {child} under {parent} would create a cycle"
                )));
            }
            if seen.insert(c) {
                stack.extend(self.direct_subcollections(c)?);
            }
        }
        self.db()
            .insert(
                "collection_members",
                vec![vec![Value::Int(parent), Value::Int(KIND_COLLECTION), Value::Int(child)]],
            )
            .map(|_| ())
            .map_err(Into::into)
    }

    fn direct_subcollections(&self, coll: CollectionId) -> Result<Vec<CollectionId>> {
        Ok(self
            .db()
            .execute(&Plan::Scan {
                table: "collection_members".into(),
                filter: Some(Expr::and(Expr::col_eq(0, coll), Expr::col_eq(1, KIND_COLLECTION))),
            })?
            .rows
            .iter()
            .filter_map(|r| r[2].as_i64())
            .collect())
    }

    /// All object ids in the collection subtree (sorted, deduplicated).
    pub fn collection_objects(&self, coll: CollectionId) -> Result<Vec<i64>> {
        if !self.collection_exists(coll)? {
            return Err(CatalogError::NoSuchObject(coll));
        }
        let mut objects = HashSet::new();
        let mut seen = HashSet::new();
        let mut stack = vec![coll];
        while let Some(c) = stack.pop() {
            if !seen.insert(c) {
                continue;
            }
            let rs = self.db().execute(&Plan::Scan {
                table: "collection_members".into(),
                filter: Some(Expr::col_eq(0, c)),
            })?;
            for row in &rs.rows {
                match (row[1].as_i64(), row[2].as_i64()) {
                    (Some(KIND_OBJECT), Some(o)) => {
                        objects.insert(o);
                    }
                    (Some(KIND_COLLECTION), Some(sub)) => stack.push(sub),
                    _ => {}
                }
            }
        }
        let mut out: Vec<i64> = objects.into_iter().collect();
        out.sort_unstable();
        Ok(out)
    }

    /// Run an attribute query scoped to a collection subtree.
    pub fn query_in_collection(&self, coll: CollectionId, q: &ObjectQuery) -> Result<Vec<i64>> {
        let members = self.collection_objects(coll)?;
        let hits = self.query(q)?;
        // Both sides sorted: merge-intersect.
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < members.len() && j < hits.len() {
            match members[i].cmp(&hits[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(hits[j]);
                    i += 1;
                    j += 1;
                }
            }
        }
        Ok(out)
    }

    /// List collections as `(id, name, owner)`.
    pub fn list_collections(&self) -> Result<Vec<(CollectionId, String, Option<String>)>> {
        let rs = self.db().execute(&Plan::Sort {
            input: Box::new(Plan::Scan { table: "collections".into(), filter: None }),
            keys: vec![(0, false)],
        })?;
        Ok(rs
            .rows
            .iter()
            .filter_map(|r| {
                Some((
                    r[0].as_i64()?,
                    r[1].as_str()?.to_string(),
                    r[2].as_str().map(|s| s.to_string()),
                ))
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::CatalogConfig;
    use crate::lead::{fig4_query, lead_catalog, FIG3_DOCUMENT};

    fn cat() -> MetadataCatalog {
        lead_catalog(CatalogConfig::default()).unwrap()
    }

    #[test]
    fn create_and_list() {
        let cat = cat();
        let a = cat.create_collection("exp-2006-06-01", Some("keisha")).unwrap();
        let b = cat.create_collection("exp-2006-06-02", None).unwrap();
        assert_ne!(a, b);
        let all = cat.list_collections().unwrap();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].1, "exp-2006-06-01");
        assert_eq!(all[0].2.as_deref(), Some("keisha"));
    }

    #[test]
    fn membership_and_scoped_query() {
        let cat = cat();
        let exp = cat.create_collection("experiment", None).unwrap();
        let in_id = cat.ingest(FIG3_DOCUMENT).unwrap();
        let out_id = cat.ingest(FIG3_DOCUMENT).unwrap();
        cat.add_object_to_collection(exp, in_id).unwrap();
        // Global query sees both; scoped query sees only the member.
        assert_eq!(cat.query(&fig4_query()).unwrap(), vec![in_id, out_id]);
        assert_eq!(cat.query_in_collection(exp, &fig4_query()).unwrap(), vec![in_id]);
    }

    #[test]
    fn nested_collections_expand() {
        let cat = cat();
        let parent = cat.create_collection("campaign", None).unwrap();
        let child = cat.create_collection("ensemble-1", None).unwrap();
        cat.add_subcollection(parent, child).unwrap();
        let a = cat.ingest(FIG3_DOCUMENT).unwrap();
        let b = cat.ingest(FIG3_DOCUMENT).unwrap();
        cat.add_object_to_collection(parent, a).unwrap();
        cat.add_object_to_collection(child, b).unwrap();
        assert_eq!(cat.collection_objects(parent).unwrap(), vec![a, b]);
        assert_eq!(cat.collection_objects(child).unwrap(), vec![b]);
        assert_eq!(cat.query_in_collection(parent, &fig4_query()).unwrap(), vec![a, b]);
    }

    #[test]
    fn cycles_rejected() {
        let cat = cat();
        let a = cat.create_collection("a", None).unwrap();
        let b = cat.create_collection("b", None).unwrap();
        let c = cat.create_collection("c", None).unwrap();
        cat.add_subcollection(a, b).unwrap();
        cat.add_subcollection(b, c).unwrap();
        assert!(matches!(cat.add_subcollection(c, a), Err(CatalogError::Definition(_))));
        assert!(matches!(cat.add_subcollection(a, a), Err(CatalogError::Definition(_))));
    }

    #[test]
    fn duplicate_membership_rejected_missing_collection_errors() {
        let cat = cat();
        let a = cat.create_collection("a", None).unwrap();
        let id = cat.ingest(FIG3_DOCUMENT).unwrap();
        cat.add_object_to_collection(a, id).unwrap();
        assert!(cat.add_object_to_collection(a, id).is_err()); // unique index
        assert!(cat.add_object_to_collection(999, id).is_err());
        assert!(cat.collection_objects(999).is_err());
    }
}
